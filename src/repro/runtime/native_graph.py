"""Native JIT execution of whole pipeline graphs.

One C translation unit per graph: every native-eligible node's CPU
lowering (:mod:`repro.backends.cpu`), the buffer pool's arena flattened
into a single byte slab with compile-time first-fit offsets
(:func:`repro.graph.pool.first_fit_layout`), and one exported segment
function per contiguous run of native nodes.  The TU compiles once with
``cc -O2 -fopenmp`` and executes through ctypes — OpenMP parallelises
the interior loop nest of each kernel exactly as the single-kernel
:mod:`repro.runtime.native` path does.

**The simulator stays the oracle.**  A node joins the native tier only
when its C lowering is provably byte-identical to the simulator.  The
gate is *prove-based*: the abstract interpreter
(:mod:`repro.lint.absint`) must prove

* every accessor read stays inside its declared boundary window (and
  an ``undefined``-boundary accessor reads only the centre pixel — the
  C lowering does raw reads there, the simulator clamps);
* every intrinsic call is in its bit-exact range:
  :data:`EXACT_INTRINSICS` always are, and ``pow`` qualifies when its
  exponent is a proven singleton in :data:`EXACT_POW_EXPONENTS`, in
  which case the lowering strength-reduces it (``x*x``, ``sqrtf(x)``,
  ``1/x``, ...) — NumPy special-cases exactly those exponents, so
  ``powf`` (1-2 ULP off NumPy's SIMD polynomials) is never emitted;

plus the structural conditions: no interpolated accessors (``floorf``
resampling drifts by ULPs), no dynamic masks, no casting accessors and
no explicit border-mode overrides.  When the interpreter itself cannot
analyze a kernel, the old syntactic intrinsic whitelist
(:func:`whitelist_ineligibility`) remains as the fallback gate.

Ineligible nodes keep running through the simulator *inside* the native
engine (the scheduler interleaves segment calls with simulator
launches), so a hybrid run is still byte-identical to a pure simulator
run — which is what the differential harness in ``tests/helpers.py``
asserts for every graph.

Compiled artifacts are content-addressed through the PR-1 store: the
graph fingerprint folds every canonical IR, the topology and segment
structure, the slab layout, the codegen options and the compiler
version.  Warm starts resolve the ``.so`` from the materialised workdir
or the artifact store and never invoke the C compiler (proven by test
via a monkeypatched ``subprocess.run``).
"""

from __future__ import annotations

import ctypes
import dataclasses
import hashlib
import json
import os
import re
import subprocess
import tempfile
from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import __version__
from ..backends.base import CodegenOptions, c_float_literal
from ..backends.cpu import CpuBackend, CpuKernelUnit, cpu_common_preamble
from ..cache.key import canonical_ir
from ..cache.store import CompilationCache
from ..dsl.image import Image
from ..errors import CodegenError
from ..graph.fusion import _renamed_ir
from ..graph.pool import BufferPool, first_fit_layout
from ..intrinsics import resolve
from ..ir.nodes import (
    Assign,
    BinOp,
    Call,
    Expr,
    FloatConst,
    ForRange,
    If,
    KernelIR,
    MaskRead,
    OutputWrite,
    Stmt,
    VarDecl,
)
from ..ir.visitors import iter_all_exprs, map_exprs
from ..obs import span
from .native import compiler_signature, find_c_compiler, native_workdir

#: bump when the emitted TU shape or the ABI of segment entry points
#: changes — stored entries with another format are ignored
NATIVE_GRAPH_FORMAT = 2

#: slab row alignment in *elements* (64 bytes for float32 rows — the
#: same padding the simulator's launch path would apply)
SLAB_ALIGNMENT = 16

#: round every slab tenant to this many bytes so rows of the next
#: tenant start cache-line aligned
_SLAB_PAD = 64

#: intrinsics whose libm lowering is bit-identical to the NumPy
#: simulator.  IEEE 754 requires correctly-rounded sqrt; fabs/floor/
#: ceil/trunc/fmin/fmax/fmod are exact operations; min/max lower to
#: comparison macros.  Transcendentals (exp, pow, sin, ...) are
#: correctly rounded in *neither* library and differ by ULPs, `round`
#: differs in tie-breaking (NumPy banker's vs C half-away), and
#: clamp/rsqrt have no libm spelling — all excluded.
EXACT_INTRINSICS = frozenset({
    "sqrt", "fabs", "abs", "floor", "ceil", "trunc",
    "fmin", "fmax", "min", "max", "fmod",
})

#: ``pow`` exponents NumPy special-cases with exact arithmetic, each
#: with a bit-identical C strength reduction (``pow`` with any other
#: exponent goes through SIMD polynomials that differ from ``powf`` by
#: ULPs — verified empirically, including that even ``powf(x, 2.0f)``
#: does NOT match ``np.power(x, 2.0)`` while ``x*x`` does)
EXACT_POW_EXPONENTS = frozenset({0.0, 0.5, 1.0, 2.0, -1.0})


# --------------------------------------------------------------------------
# Eligibility
# --------------------------------------------------------------------------


def _structural_ineligibility(node) -> Optional[str]:
    """The analysis-independent rejects shared by both gates."""
    if node.compiled is None:
        raise CodegenError(
            f"node {node.name!r} is not compiled; run compile_graph "
            "before planning native execution")
    if "border" in node.options:
        return "explicit border-mode override"
    ir = node.compiled.ir
    out_img = node.iteration_space.image
    if ir.pixel_type.name != out_img.pixel_type.name:
        return "output cast: kernel and image pixel types differ"
    for acc in ir.accessors:
        if acc.interpolation is not None:
            return f"interpolated accessor {acc.name!r}"
        image = node.accessor_objs[acc.name].image
        if acc.pixel_type.name != image.pixel_type.name:
            return f"casting accessor {acc.name!r}"
    for mask in ir.masks:
        if mask.coefficients is None:
            return f"dynamic mask {mask.name!r}"
    return None


def whitelist_ineligibility(node) -> Optional[str]:
    """The pre-absint gate: structural rejects plus a syntactic scan
    for non-whitelisted intrinsics.  Kept as (a) the fallback when the
    abstract interpreter cannot analyze a kernel and (b) the baseline
    for CI's eligibility diff (the prove-based gate must never admit
    fewer nodes than this one)."""
    reason = _structural_ineligibility(node)
    if reason is not None:
        return reason
    for e in iter_all_exprs(node.compiled.ir.body):
        if isinstance(e, Call):
            name = resolve(e.func).name
            if name not in EXACT_INTRINSICS:
                return f"inexact intrinsic {name!r}"
    return None


def _fmt_bound(v: float) -> str:
    if v == float("-inf"):
        return "-inf"
    if v == float("inf"):
        return "inf"
    return f"{int(v)}" if float(v).is_integer() else f"{v:g}"


def prove_ineligibility(node) -> Optional[str]:
    """The prove-based gate: run the abstract interpreter over the
    node's typed IR and demand a proof for every access and intrinsic.
    Returns the first unproven fact as the reason, or ``None`` when the
    whole kernel is proven bit-exact-lowerable."""
    from ..lint.absint import interpret

    reason = _structural_ineligibility(node)
    if reason is not None:
        return reason
    result = interpret(node.compiled.ir)
    for r in result.reads:
        if r.in_window is not True:
            dx, dy = r.dx, r.dy
            return (f"unproven access: accessor {r.accessor!r} offsets "
                    f"[{_fmt_bound(dx.lo)}..{_fmt_bound(dx.hi)}]x"
                    f"[{_fmt_bound(dy.lo)}..{_fmt_bound(dy.hi)}] not "
                    f"proven inside its {r.window[0]}x{r.window[1]} "
                    f"window")
        if r.boundary_mode == "undefined" and not (
                r.dx.lo >= 0 >= r.dx.hi and r.dy.lo >= 0 >= r.dy.hi):
            # the C lowering reads raw memory where the simulator
            # clamps: only centre-pixel reads are provably identical
            return (f"unproven access: accessor {r.accessor!r} reads a "
                    f"halo under undefined boundary handling")
    for c in result.calls:
        if c.func in EXACT_INTRINSICS:
            continue
        if c.func == "pow":
            exponent = c.singleton_arg(1)
            if exponent in EXACT_POW_EXPONENTS:
                continue
            shown = "unproven" if exponent is None else _fmt_bound(exponent)
            return (f"inexact intrinsic 'pow' (exponent {shown}; only "
                    f"proven-constant exponents "
                    f"{sorted(EXACT_POW_EXPONENTS)} strength-reduce to "
                    f"bit-exact forms)")
        return f"inexact intrinsic {c.func!r}"
    return None


def native_ineligibility(node) -> Optional[str]:
    """Why *node* cannot join the native tier, or None when it can.

    The rules are exactly the bit-exactness argument in the module
    docstring; anything rejected here runs through the simulator
    instead, keeping hybrid output byte-identical by construction.
    The prove-based gate decides; the syntactic whitelist only answers
    when the interpreter itself fails on the kernel.
    """
    try:
        return prove_ineligibility(node)
    except CodegenError:
        raise
    except Exception:
        return whitelist_ineligibility(node)


# --------------------------------------------------------------------------
# Planning
# --------------------------------------------------------------------------


@dataclasses.dataclass
class BufferBinding:
    """Where one image lives during native execution."""

    kind: str          # "slab" | "ext"
    index: int         # slab tenant ordinal / ext pointer slot
    offset: int        # byte offset into the slab (0 for ext)
    stride: int        # row stride in elements


@dataclasses.dataclass
class NodeLowering:
    """One node's place in the native plan."""

    index: int                    # position in topological order
    node: object                  # GraphNode
    native: bool
    reason: Optional[str] = None  # ineligibility reason when not native
    ir: Optional[KernelIR] = None         # renamed IR (call-site truth)
    unit: Optional[CpuKernelUnit] = None
    acc_objs: Optional[Dict[str, object]] = None  # renamed name -> Accessor


@dataclasses.dataclass
class NativeGraphPlan:
    """Everything the emitter and the executor need, precomputed."""

    graph_name: str
    lowerings: List[NodeLowering]
    #: node indices per exported segment function, in execution order
    segments: List[List[int]]
    #: interleaved execution plan: ("native", segment) | ("sim", node idx)
    schedule: List[Tuple[str, int]]
    #: externally-visible images, in ext[] slot order
    ext_images: List[Image]
    bindings: Dict[int, BufferBinding]    # id(image) -> binding
    slab_bytes: int
    slab_allocs: int
    slab_reuses: int
    #: per segment: (ext slots to seed before the call,
    #:               ext slots to write back after it)
    seg_io: List[Tuple[List[int], List[int]]]
    reasons: Dict[str, str]               # node name -> fallback reason

    @property
    def native_count(self) -> int:
        return sum(1 for lw in self.lowerings if lw.native)


def _sanitize(name: str) -> str:
    return re.sub(r"[^0-9A-Za-z_]", "_", name)


def _rename_masks(ir: KernelIR, prefix: str) -> KernelIR:
    """Prefix mask names (``_renamed_ir`` leaves them alone — fine for
    fusion's single-kernel output, a collision hazard in a shared TU)."""
    mask_map = {m.name: prefix + m.name for m in ir.masks}
    if not mask_map:
        return ir

    def rename(e):
        if isinstance(e, MaskRead) and e.mask in mask_map:
            return dataclasses.replace(e, mask=mask_map[e.mask])
        return e

    return dataclasses.replace(
        ir,
        body=map_exprs(ir.body, rename),
        masks=[dataclasses.replace(m, name=mask_map[m.name])
               for m in ir.masks])


def _strength_reduce_pow(ir: KernelIR) -> KernelIR:
    """Replace ``pow`` calls whose exponent the abstract interpreter
    proves to be a singleton in :data:`EXACT_POW_EXPONENTS` with their
    bit-exact forms (``1.0``, ``sqrtf(x)``, ``x``, ``x*x``, ``1/x``).

    This is what makes the prove-based gate's ``pow`` admission sound:
    the emitted C never contains ``powf`` (which is ULPs away from
    NumPy), only operations that are IEEE-exact on both sides.  The
    rewrite is top-down so the interpreter's fact-to-expression
    identity map stays valid for nested calls."""
    from ..lint.absint import interpret

    exponents: Dict[int, float] = {}
    for c in interpret(ir).calls:
        if c.func == "pow" and c.expr is not None:
            exponent = c.singleton_arg(1)
            if exponent in EXACT_POW_EXPONENTS:
                exponents[id(c.expr)] = exponent
    if not exponents:
        return ir

    def rewrite(e: Expr) -> Expr:
        exponent = exponents.get(id(e))
        if exponent is not None:
            base = rewrite(e.args[0])
            if exponent == 0.0:
                return FloatConst(1.0, type=e.type)
            if exponent == 0.5:
                return Call("sqrt", (base,), type=e.type)
            if exponent == 1.0:
                return base
            if exponent == 2.0:
                return BinOp("*", base, base, type=e.type)
            return BinOp("/", FloatConst(1.0, type=e.type), base,
                         type=e.type)
        kids = e.children()
        if not kids:
            return e
        new = [rewrite(k) for k in kids]
        if all(n is k for n, k in zip(new, kids)):
            return e
        return e.with_children(*new)

    def rewrite_stmt(s: Stmt) -> Stmt:
        if isinstance(s, VarDecl):
            return dataclasses.replace(s, init=rewrite(s.init))
        if isinstance(s, Assign):
            return dataclasses.replace(s, value=rewrite(s.value))
        if isinstance(s, OutputWrite):
            return dataclasses.replace(s, value=rewrite(s.value))
        if isinstance(s, If):
            return dataclasses.replace(
                s, cond=rewrite(s.cond),
                then_body=[rewrite_stmt(t) for t in s.then_body],
                else_body=[rewrite_stmt(t) for t in s.else_body])
        if isinstance(s, ForRange):
            return dataclasses.replace(
                s, start=rewrite(s.start), stop=rewrite(s.stop),
                step=rewrite(s.step),
                body=[rewrite_stmt(t) for t in s.body])
        return s

    return dataclasses.replace(
        ir, body=[rewrite_stmt(s) for s in ir.body])


def _lower_node(node, index: int) -> NodeLowering:
    """Namespace one node's IR into the shared TU and lower it."""
    prefix = f"g{index}_"
    renamed, acc_map = _renamed_ir(node.compiled.ir, prefix)
    renamed = _rename_masks(renamed, prefix)
    renamed = _strength_reduce_pow(renamed)
    renamed = dataclasses.replace(
        renamed, name=_sanitize(f"n{index}_{node.compiled.ir.name}"))
    acc_objs = {new: node.accessor_objs[old]
                for old, new in acc_map.items()}
    space = node.iteration_space
    backend = CpuBackend(CodegenOptions(backend="cpu"))
    unit = backend.kernel_unit(renamed, (space.width, space.height))
    return NodeLowering(index=index, node=node, native=True,
                        ir=renamed, unit=unit, acc_objs=acc_objs)


def plan_native_graph(graph, order=None) -> NativeGraphPlan:
    """Partition *graph* into native segments and simulator launches,
    classify every image as slab-backed or external, and assign slab
    offsets by first-fit over topological lifetimes."""
    order = list(order if order is not None else graph.topological_order())
    lowerings: List[NodeLowering] = []
    reasons: Dict[str, str] = {}
    for i, node in enumerate(order):
        reason = native_ineligibility(node)
        if reason is None:
            try:
                lowerings.append(_lower_node(node, i))
                continue
            except CodegenError as exc:
                reason = f"cpu lowering failed: {exc}"
        reasons[node.name] = reason
        lowerings.append(NodeLowering(index=i, node=node, native=False,
                                      reason=reason))

    # maximal contiguous runs of native nodes become segments
    segments: List[List[int]] = []
    schedule: List[Tuple[str, int]] = []
    for lw in lowerings:
        if lw.native:
            if segments and schedule and schedule[-1][0] == "native":
                segments[-1].append(lw.index)
            else:
                segments.append([lw.index])
                schedule.append(("native", len(segments) - 1))
        else:
            schedule.append(("sim", lw.index))

    # -- image classification ----------------------------------------------
    native_set = {id(lw.node) for lw in lowerings if lw.native}
    outputs = graph.outputs()

    def touched_by_sim(img: Image) -> bool:
        producer = graph.producer_of(img)
        if producer is not None and id(producer) not in native_set:
            return True
        return any(id(c) not in native_set
                   for c in graph.consumers_of(img))

    slab_images: List[Tuple[Image, int, int]] = []   # (img, start, end)
    ext_images: List[Image] = []
    ext_index: Dict[int, int] = {}
    topo_pos = {id(lw.node): lw.index for lw in lowerings}

    def bind_ext(img: Image) -> None:
        if id(img) not in ext_index:
            ext_index[id(img)] = len(ext_images)
            ext_images.append(img)

    for lw in lowerings:
        if not lw.native:
            continue
        images = [lw.node.output] + [a.image for a in lw.acc_objs.values()]
        for img in images:
            if id(img) in ext_index \
                    or any(img is s for s, _, _ in slab_images):
                continue
            producer = graph.producer_of(img)
            consumers = graph.consumers_of(img)
            is_intermediate = (producer is not None and consumers
                               and not any(img is o for o in outputs))
            if is_intermediate and not touched_by_sim(img):
                start = topo_pos[id(producer)]
                end = max(topo_pos[id(c)] for c in consumers)
                slab_images.append((img, start, end))
            else:
                bind_ext(img)

    # -- slab layout ---------------------------------------------------------
    requests = []
    for img, start, end in slab_images:
        stride = BufferPool.padded_stride(img.width, SLAB_ALIGNMENT)
        nbytes = img.height * stride * img.pixel_type.np_dtype.itemsize
        nbytes = -(-nbytes // _SLAB_PAD) * _SLAB_PAD
        requests.append((start, end, nbytes))
    offsets, slab_bytes, allocs, reuses = first_fit_layout(requests)

    bindings: Dict[int, BufferBinding] = {}
    for slot, ((img, _, _), off) in enumerate(zip(slab_images, offsets)):
        stride = BufferPool.padded_stride(img.width, SLAB_ALIGNMENT)
        bindings[id(img)] = BufferBinding(kind="slab", index=slot,
                                          offset=off, stride=stride)
    for img in ext_images:
        bindings[id(img)] = BufferBinding(kind="ext",
                                          index=ext_index[id(img)],
                                          offset=0, stride=img.width)

    # -- per-segment external I/O -------------------------------------------
    seg_io: List[Tuple[List[int], List[int]]] = []
    for seg in segments:
        touched, written = set(), set()
        for idx in seg:
            lw = lowerings[idx]
            out_b = bindings[id(lw.node.output)]
            if out_b.kind == "ext":
                touched.add(out_b.index)
                written.add(out_b.index)
            for acc in lw.ir.accessors:
                b = bindings[id(lw.acc_objs[acc.name].image)]
                if b.kind == "ext":
                    touched.add(b.index)
        seg_io.append((sorted(touched), sorted(written)))

    return NativeGraphPlan(
        graph_name=graph.name,
        lowerings=lowerings,
        segments=segments,
        schedule=schedule,
        ext_images=ext_images,
        bindings=bindings,
        slab_bytes=slab_bytes,
        slab_allocs=allocs,
        slab_reuses=reuses,
        seg_io=seg_io,
        reasons=reasons,
    )


# --------------------------------------------------------------------------
# Emission
# --------------------------------------------------------------------------


def _binding_ptr(b: BufferBinding) -> str:
    if b.kind == "slab":
        return f"slab + {b.offset}"
    return f"ext[{b.index}]"


def _call_line(lw: NodeLowering,
               bindings: Dict[int, BufferBinding]) -> str:
    node, ir = lw.node, lw.ir
    space = node.iteration_space
    out_b = bindings[id(node.output)]
    out_t = ir.pixel_type.cuda_name
    args = [f"({out_t} *)({_binding_ptr(out_b)})", str(out_b.stride)]
    for acc in ir.accessors:
        img = lw.acc_objs[acc.name].image
        b = bindings[id(img)]
        t = acc.pixel_type.cuda_name
        args += [f"(const {t} *)({_binding_ptr(b)})",
                 str(img.width), str(img.height), str(b.stride)]
    args += [str(space.width), str(space.height),
             str(space.offset_x), str(space.offset_y)]
    for p in ir.params:
        if not p.baked:
            if p.type.is_float:
                args.append(c_float_literal(float(p.value), p.type))
            else:
                args.append(str(int(p.value)))
    return f"    {lw.unit.entry}({', '.join(args)});"


def emit_graph_source(plan: NativeGraphPlan) -> str:
    """The whole graph as one C99 translation unit."""
    lines: List[str] = [
        f"// pipeline graph {plan.graph_name!r}: generated by hipacc-py "
        "(native graph tier)",
        f"// {plan.native_count} native node(s), "
        f"{len(plan.segments)} segment(s), "
        f"{plan.slab_bytes} slab byte(s)",
    ]
    lines += cpu_common_preamble()
    lines += ["#include <string.h>", ""]
    for lw in plan.lowerings:
        if not lw.native:
            continue
        lines.append(f"// node {lw.node.name!r} ({lw.node.label()})")
        lines += lw.unit.interp_lines
        lines += lw.unit.mask_lines
        lines += lw.unit.func_lines
        lines.append("")
    for k, seg in enumerate(plan.segments):
        lines.append(f"void repro_graph_seg{k}(void * const *ext, "
                     "unsigned char *slab) {")
        lines.append("    (void)ext; (void)slab;")
        for idx in seg:
            lw = plan.lowerings[idx]
            lines.append(f"    // node {lw.node.name!r}")
            out_b = plan.bindings[id(lw.node.output)]
            if out_b.kind == "slab":
                img = lw.node.output
                nbytes = (img.height * out_b.stride
                          * img.pixel_type.np_dtype.itemsize)
                # fresh-Image / pool zero-fill semantics: the producer
                # may cover only part of the image
                lines.append(f"    memset(slab + {out_b.offset}, 0, "
                             f"{nbytes});")
            lines.append(_call_line(lw, plan.bindings))
        lines.append("}")
        lines.append("")
    return "\n".join(lines)


# --------------------------------------------------------------------------
# Fingerprinting
# --------------------------------------------------------------------------


def graph_fingerprint(plan: NativeGraphPlan, cc: str,
                      openmp: bool = True) -> str:
    """sha256 content address of the native compilation: canonical IRs,
    topology/segments, slab layout, codegen options, compiler version.
    Any change that could alter the emitted TU or its ABI changes the
    fingerprint, so stale ``.so`` artifacts can never be resurrected."""
    nodes = []
    for lw in plan.lowerings:
        if not lw.native:
            continue
        pristine = dataclasses.replace(
            lw.ir,
            accessors=[dataclasses.replace(a, is_read=False,
                                           is_written=False)
                       for a in lw.ir.accessors])
        space = lw.node.iteration_space
        bindings = [_canonical_binding(plan.bindings[id(img)], img)
                    for img in ([lw.node.output]
                                + [lw.acc_objs[a.name].image
                                   for a in lw.ir.accessors])]
        params = [[p.name, repr(float(p.value) if p.type.is_float
                                else int(p.value))]
                  for p in lw.ir.params if not p.baked]
        nodes.append([lw.index, canonical_ir(pristine),
                      [space.width, space.height,
                       space.offset_x, space.offset_y],
                      bindings, params])
    doc = {
        "kind": "native-graph",
        "format": NATIVE_GRAPH_FORMAT,
        "version": __version__,
        "cc": compiler_signature(cc),
        "openmp": bool(openmp),
        "alignment": SLAB_ALIGNMENT,
        "nodes": nodes,
        "segments": plan.segments,
        "slab_bytes": plan.slab_bytes,
    }
    blob = json.dumps(doc, separators=(",", ":"), sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


def _canonical_binding(b: BufferBinding, img: Image) -> List:
    return [b.kind, b.index, b.offset, b.stride, img.width, img.height,
            img.pixel_type.name]


# --------------------------------------------------------------------------
# Compilation (workdir -> artifact store -> fresh compile)
# --------------------------------------------------------------------------


@dataclasses.dataclass
class NativeGraphModule:
    """A compiled-and-loaded native graph, ready to execute."""

    plan: NativeGraphPlan
    fingerprint: str
    library_path: str
    source: str
    #: where the loaded ``.so`` came from: "workdir" (materialised file
    #: from an earlier run), "store" (artifact cache), or "fresh"
    #: (C compiler invoked this call)
    origin: str
    entries: List[str]
    _lib: ctypes.CDLL = dataclasses.field(repr=False, default=None)

    def executor(self) -> "NativeGraphExecutor":
        return NativeGraphExecutor(self)


class NativeGraphExecutor:
    """Per-execution buffers: the slab plus one contiguous array per
    external image, with copy-in/copy-out around each segment call."""

    def __init__(self, module: NativeGraphModule):
        self.module = module
        plan = module.plan
        self._slab = np.zeros(max(plan.slab_bytes, 1), dtype=np.uint8)
        self._ext = [np.zeros((img.height, img.width),
                              dtype=img.pixel_type.np_dtype)
                     for img in plan.ext_images]
        self._ptrs = (ctypes.c_void_p * max(len(self._ext), 1))()
        for j, buf in enumerate(self._ext):
            self._ptrs[j] = buf.ctypes.data
        self._slab_ptr = ctypes.c_void_p(self._slab.ctypes.data)

    def run_segment(self, k: int) -> None:
        plan = self.module.plan
        touched, written = plan.seg_io[k]
        for j in touched:
            # seed reads *and* writes: a partial iteration space must
            # preserve the pixels outside it, exactly like the simulator
            self._ext[j][...] = plan.ext_images[j].pixels
        fn = getattr(self.module._lib, self.module.entries[k])
        fn(self._ptrs, self._slab_ptr)
        for j in written:
            plan.ext_images[j].pixels[...] = self._ext[j]


def _atomic_write(path: str, blob: bytes) -> None:
    fd, tmp = tempfile.mkstemp(suffix=".tmp",
                               dir=os.path.dirname(path))
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(blob)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def compile_native_graph(graph, order=None,
                         cache: Optional[CompilationCache] = None,
                         cc: Optional[str] = None,
                         openmp: bool = True) -> NativeGraphModule:
    """Plan, fingerprint and load the native module for *graph*.

    Resolution order — materialised ``.so`` in the workdir, then the
    artifact *cache*, then a fresh ``cc`` invocation; the first two
    never spawn a subprocess, which is what keeps warm starts free of
    compiler invocations.
    Raises :class:`CodegenError` when no compiler is on PATH or no node
    is native-eligible (callers fall back to the simulator).
    """
    cc = cc or find_c_compiler()
    if cc is None:
        raise CodegenError("no C compiler found on PATH")
    with span("native.compile", graph=graph.name) as sp:
        plan = plan_native_graph(graph, order)
        if plan.native_count == 0:
            raise CodegenError(
                "no native-eligible nodes in graph "
                f"{graph.name!r}: " + "; ".join(
                    f"{n}: {r}" for n, r in sorted(plan.reasons.items())))
        source = emit_graph_source(plan)
        fingerprint = graph_fingerprint(plan, cc, openmp)
        key = f"ng_{fingerprint}"
        entries = [f"repro_graph_seg{k}"
                   for k in range(len(plan.segments))]
        workdir = native_workdir("hipacc_py_native_graph")
        so_path = os.path.join(workdir, f"graph_{fingerprint[:16]}.so")

        lib = None
        origin = "fresh"
        if os.path.exists(so_path):
            try:
                lib = ctypes.CDLL(so_path)
                origin = "workdir"
            except OSError:
                # stale or truncated .so: heal by falling through
                try:
                    os.unlink(so_path)
                except OSError:
                    pass
        if lib is None and cache is not None:
            hit = cache.get_artifact(key)
            if hit is not None:
                payload, blob = hit
                if (payload.get("kind") == "native-graph"
                        and payload.get("format") == NATIVE_GRAPH_FORMAT):
                    _atomic_write(so_path, blob)
                    try:
                        lib = ctypes.CDLL(so_path)
                        origin = "store"
                    except OSError:
                        cache.invalidate(key)
                        try:
                            os.unlink(so_path)
                        except OSError:
                            pass
                else:
                    cache.invalidate(key)
        if lib is None:
            c_path = so_path[:-3] + ".c"
            with open(c_path, "w") as fh:
                fh.write(source)
            cmd = [cc, "-O2", "-shared", "-fPIC", "-std=c99",
                   c_path, "-o", so_path, "-lm"]
            if openmp:
                cmd.insert(1, "-fopenmp")
            result = subprocess.run(cmd, capture_output=True, text=True,
                                    timeout=240)
            if result.returncode != 0:
                raise CodegenError(
                    f"native graph compilation failed:\n{result.stderr}")
            lib = ctypes.CDLL(so_path)
            origin = "fresh"
            if cache is not None:
                with open(so_path, "rb") as fh:
                    blob = fh.read()
                cache.put_artifact(key, {
                    "kind": "native-graph",
                    "format": NATIVE_GRAPH_FORMAT,
                    "cc": compiler_signature(cc),
                    "entries": entries,
                    "source_sha256":
                        hashlib.sha256(source.encode()).hexdigest(),
                }, blob)

        for entry in entries:
            fn = getattr(lib, entry)
            fn.restype = None
            fn.argtypes = [ctypes.POINTER(ctypes.c_void_p),
                           ctypes.c_void_p]
        sp.attrs.update(origin=origin, segments=len(plan.segments),
                        native_nodes=plan.native_count,
                        slab_bytes=plan.slab_bytes)
        return NativeGraphModule(plan=plan, fingerprint=fingerprint,
                                 library_path=so_path, source=source,
                                 origin=origin, entries=entries,
                                 _lib=lib)
