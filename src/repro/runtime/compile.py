"""The compilation driver — the ``hipacc`` compiler invocation.

Pipeline (paper Sections IV-V):

1. parse the kernel body (Clang stand-in: Python ``ast``) and type check;
2. apply IR optimizations (constant propagation, optional unrolling);
3. consult the optimization-selection database for the target
   (texture path, scratchpad staging, padding) unless overridden;
4. generate code once with default dispatch constants, estimate resource
   usage (the nvcc stand-in);
5. run Algorithm 2 to select block configuration and tiling;
6. regenerate the final code for the selected configuration.

With ``cache=`` the driver becomes content-addressed: the canonicalised
kernel IR, the resolved codegen options, the device model, the backend
and the package version are hashed into a key (:mod:`repro.cache.key`),
and a hit skips stages 2-6 entirely — the paper's framework re-generates
and re-tunes per kernel/device pair on every run, which auto-tuning
stacks such as ImageCL and IPMACC memoize for exactly this reason.  A
pre-parse kernel fingerprint additionally memoizes stage 1, so a warm
compile costs a hash and a dictionary lookup.
"""

from __future__ import annotations

import contextlib
import time
from typing import Dict, Optional, Tuple, Union

from ..backends.base import (
    BorderMode,
    CodegenOptions,
    MaskMemory,
    generate,
)
from ..cache.key import (
    compute_key,
    ir_digest,
    kernel_fingerprint,
    pristine_ir_digest,
)
from ..cache.serialize import entry_from_dict, entry_to_dict
from ..cache.store import CompilationCache, get_default_cache
from ..dsl.boundary import Boundary
from ..dsl.kernel import Kernel
from ..errors import DslError, MappingError
from ..frontend.parser import accessor_objects, parse_kernel
from ..hwmodel.database import get_device
from ..hwmodel.device import DeviceSpec
from ..hwmodel.occupancy import compute_occupancy
from ..hwmodel.resources import estimate_resources, smem_tile_bytes
from ..ir.typecheck import typecheck_kernel
from ..mapping.heuristic import select_configuration
from ..mapping.optdb import TunedDatabase, default_database
from ..obs import normalize_stage_timings, span
from .program import CompiledKernel

_DEFAULT_DEVICE = {"cuda": "Tesla C2050", "opencl": "Tesla C2050"}


def _lint_key(ir_dig: str, options) -> str:
    """Memo key for one lint run: the canonical-IR digest plus every
    input the passes are sensitive to (block shape, smem staging)."""
    block = options.block
    return f"{ir_dig}:b{block[0]}x{block[1]}:s{int(options.use_smem)}"


def _verify(ir, options, *, strict: bool, timings,
            store=None, ir_dig=None) -> list:
    """The always-on compile-time verify (:mod:`repro.lint`).

    Runs the cheap kernel-level passes against the resolved
    configuration, delivers the findings to any active
    :func:`repro.lint.collecting` sinks, and — only with
    ``strict=True`` — rejects the compile when anything at warning
    severity or above fired.  By default findings are attached to the
    :class:`CompiledKernel` without affecting compilation: kernels that
    lint dirty (e.g. deliberate out-of-bounds reads under UNDEFINED
    boundary handling) must still compile exactly as before.

    With a *store* and *ir_dig*, results memoise per
    :func:`_lint_key` in the :class:`CompilationCache`, so repeat
    compiles of a known kernel (above all, cache hits) skip the whole
    pipeline; the memoised findings are still emitted and still gate a
    ``strict`` compile.
    """
    from ..errors import LintError
    from ..lint import Severity, lint_ir
    from ..lint.collect import emit

    with span("compile.lint", kernel=ir.name) as sp:
        key = _lint_key(ir_dig, options) \
            if store is not None and ir_dig is not None else None
        diags = store.lint_get(key) if key is not None else None
        if diags is None:
            # the driver's IR is already typed: pass it as its own typed
            # counterpart so the verify never re-runs the typechecker
            diags = lint_ir(ir, typed=ir, block=options.block,
                            use_smem=options.use_smem)
            if key is not None:
                store.lint_put(key, diags)
        emit(diags)
    timings["lint_ms"] = sp.duration_ms
    if strict:
        worst = [d for d in diags if d.severity >= Severity.WARNING]
        if worst:
            raise LintError(
                "strict compile rejected kernel "
                f"{ir.name!r}: {len(worst)} finding(s) at warning "
                "severity or above:\n"
                + "\n".join(d.format() for d in worst),
                diagnostics=diags)
    return diags


def _resolve_device(device: Union[None, str, DeviceSpec],
                    backend: str) -> DeviceSpec:
    if isinstance(device, DeviceSpec):
        return device
    if device is None:
        device = _DEFAULT_DEVICE[backend]
    return get_device(device)


def _resolve_cache(cache: Union[None, bool, CompilationCache]
                   ) -> Optional[CompilationCache]:
    if cache is None or cache is False:
        return None
    if cache is True:
        return get_default_cache()
    return cache


def _max_window(ir) -> Tuple[int, int]:
    wx = wy = 1
    for acc in ir.accessors:
        wx = max(wx, acc.window[0])
        wy = max(wy, acc.window[1])
    for mask in ir.masks:
        wx = max(wx, mask.size[0])
        wy = max(wy, mask.size[1])
    return (wx, wy)


def compile_kernel(kernel: Kernel,
                   backend: str = "cuda",
                   device: Union[None, str, DeviceSpec] = None,
                   block: Optional[Tuple[int, int]] = None,
                   border: Union[str, BorderMode, None] = None,
                   use_texture: Optional[bool] = None,
                   use_smem: Optional[bool] = None,
                   mask_memory: Union[str, MaskMemory] = MaskMemory.CONSTANT,
                   unroll: bool = False,
                   fold_constants: bool = True,
                   fast_math: bool = False,
                   emit_config_macros: bool = False,
                   vectorize: int = 1,
                   pixels_per_thread: int = 1,
                   bake_params: bool = True,
                   cache: Union[None, bool, CompilationCache] = None,
                   strict: bool = False,
                   tuned: Union[None, bool, TunedDatabase] = None,
                   tuned_engine: str = "sim"
                   ) -> CompiledKernel:
    """Compile *kernel* for *backend*/*device* (see module docstring).

    Parameters left ``None`` are decided by the optimization database
    (texture, scratchpad) or — when no measured winner is on file — by
    Algorithm 2 (block configuration).

    *tuned* selects the measured-winner store consulted before
    Algorithm 2 (docs/TUNING.md): ``None``/``True`` use the
    process-wide :func:`repro.mapping.optdb.default_tuned_database`,
    ``False`` disables the lookup, or pass a
    :class:`~repro.mapping.optdb.TunedDatabase` directly.
    *tuned_engine* names the execution tier the compile is for
    (``"sim"``/``"native"``) so a winner tuned for that tier is
    preferred.

    Every compile runs the cheap :mod:`repro.lint` verify passes and
    attaches the findings to ``CompiledKernel.diagnostics``; with
    ``strict=True`` any finding at warning severity or above raises
    :class:`~repro.errors.LintError` instead of producing a kernel.

    *cache* enables the content-addressed compilation cache: ``True``
    uses the process-wide default (:func:`repro.cache.get_default_cache`,
    honoring ``REPRO_CACHE_DIR``), or pass a
    :class:`~repro.cache.CompilationCache` directly.  Cached artifacts
    are byte-identical to fresh compiles; ``CompiledKernel.from_cache``
    and ``.stage_timings`` report what happened.
    """
    t_start = time.perf_counter()
    if not isinstance(kernel, Kernel):
        raise DslError("compile_kernel expects a Kernel instance")
    dev = _resolve_device(device, backend)
    if not dev.supports_backend(backend):
        raise DslError(
            f"{dev.name} does not support the {backend} backend")
    store = _resolve_cache(cache)

    timings: Dict[str, float] = {}

    with span("compile", backend=backend, device=dev.name) as root:
        # ---- stage 1: frontend (memoised by kernel fingerprint) -----------
        with span("compile.frontend") as sp:
            ir = None
            ir_dig = None
            fingerprint = None
            if store is not None:
                fingerprint = kernel_fingerprint(kernel,
                                                 bake_params=bake_params)
                if fingerprint is not None:
                    memo = store.frontend_get(fingerprint)
                    if memo is not None:
                        ir_dig, ir = memo
            if ir is None:
                ir = typecheck_kernel(
                    parse_kernel(kernel, bake_params=bake_params))
                if store is not None:
                    ir_dig = ir_digest(ir)
                    if fingerprint is not None:
                        store.frontend_put(fingerprint, ir_dig, ir)
        timings["frontend_ms"] = sp.duration_ms
        root.attrs["kernel"] = ir.name

        return _compile_from_ir(
            ir, accessor_objects(kernel), kernel.iteration_space,
            dev=dev, backend=backend, block=block, border=border,
            use_texture=use_texture, use_smem=use_smem,
            mask_memory=mask_memory, unroll=unroll,
            fold_constants=fold_constants, fast_math=fast_math,
            emit_config_macros=emit_config_macros, vectorize=vectorize,
            pixels_per_thread=pixels_per_thread, bake_params=bake_params,
            store=store, ir_dig=ir_dig, timings=timings, t_start=t_start,
            strict=strict, root_span=root, tuned=tuned,
            tuned_engine=tuned_engine)


def compile_ir(ir,
               accessors: Dict[str, "Accessor"],
               iteration_space,
               backend: str = "cuda",
               device: Union[None, str, DeviceSpec] = None,
               block: Optional[Tuple[int, int]] = None,
               border: Union[str, BorderMode, None] = None,
               use_texture: Optional[bool] = None,
               use_smem: Optional[bool] = None,
               mask_memory: Union[str, MaskMemory] = MaskMemory.CONSTANT,
               unroll: bool = False,
               fold_constants: bool = True,
               fast_math: bool = False,
               emit_config_macros: bool = False,
               vectorize: int = 1,
               pixels_per_thread: int = 1,
               cache: Union[None, bool, CompilationCache] = None,
               strict: bool = False,
               tuned: Union[None, bool, TunedDatabase] = None,
               tuned_engine: str = "sim"
               ) -> CompiledKernel:
    """Compile a *type-checked* :class:`~repro.ir.nodes.KernelIR` directly,
    skipping the Python frontend.

    This is the entry point for synthesized kernels — notably the graph
    runtime's fused point operators (:mod:`repro.graph.fusion`), whose IR
    never existed as a ``Kernel.kernel()`` method.  *accessors* binds the
    IR's accessor names to live :class:`~repro.dsl.Accessor` objects and
    *iteration_space* supplies the launch geometry and output image.
    Caching is content-addressed on the IR digest, exactly as in
    :func:`compile_kernel`.
    """
    t_start = time.perf_counter()
    dev = _resolve_device(device, backend)
    if not dev.supports_backend(backend):
        raise DslError(
            f"{dev.name} does not support the {backend} backend")
    store = _resolve_cache(cache)
    with span("compile", kernel=ir.name, backend=backend,
              device=dev.name) as root:
        ir_dig = None
        if store is not None:
            # digest the pre-analysis form: codegen fills AccessorInfo
            # is_read/is_written in place, and compile_kernel hashes before
            # that happens — normalising keeps the two paths' keys identical
            # and makes repeated compile_ir calls on one IR object stable
            ir_dig = pristine_ir_digest(ir)
        return _compile_from_ir(
            ir, dict(accessors), iteration_space,
            dev=dev, backend=backend, block=block, border=border,
            use_texture=use_texture, use_smem=use_smem,
            mask_memory=mask_memory, unroll=unroll,
            fold_constants=fold_constants, fast_math=fast_math,
            emit_config_macros=emit_config_macros, vectorize=vectorize,
            pixels_per_thread=pixels_per_thread, bake_params=True,
            store=store, ir_dig=ir_dig, timings={}, t_start=t_start,
            strict=strict, root_span=root, tuned=tuned,
            tuned_engine=tuned_engine)


def _compile_from_ir(ir, accessor_objs, iteration_space, *,
                     dev: DeviceSpec, backend: str,
                     block, border, use_texture, use_smem, mask_memory,
                     unroll, fold_constants, fast_math, emit_config_macros,
                     vectorize, pixels_per_thread, bake_params,
                     store, ir_dig, timings, t_start,
                     strict=False, root_span=None,
                     tuned=None, tuned_engine="sim") -> CompiledKernel:
    """Stages 2-6 of the driver, shared by :func:`compile_kernel` (after
    its frontend stage) and :func:`compile_ir` (no frontend at all).

    Stage wall-clocks are measured by :mod:`repro.obs` spans; *timings*
    is the dict view over them, normalised to the full
    :data:`~repro.obs.schema.STAGE_KEYS` schema before it reaches the
    :class:`CompiledKernel` so the cache-hit and fresh paths can never
    emit different key sets again.
    """
    window = _max_window(ir)
    geometry = (iteration_space.width, iteration_space.height)

    # optimization database decisions (Section V-B)
    entry = default_database().lookup(dev, backend)
    if use_texture is None:
        use_texture = bool(entry.texture_beneficial) if entry else False
        if vectorize > 1:
            use_texture = False   # vloadN needs buffers, not images
    if use_smem is None:
        use_smem = bool(entry.smem_beneficial) if entry else False
        if vectorize > 1:
            use_smem = False

    if border is None:
        has_bh = any(Boundary(a.boundary_mode) != Boundary.UNDEFINED
                     for a in ir.accessors)
        border_mode = BorderMode.SPECIALIZED if has_bh else BorderMode.NONE
    elif isinstance(border, BorderMode):
        border_mode = border
    else:
        border_mode = BorderMode(border)
    if isinstance(mask_memory, str):
        mask_memory = MaskMemory(mask_memory)

    # ---- tuned-configuration lookup (docs/TUNING.md) ----------------------
    # a measured winner for this exact kernel beats Algorithm 2's static
    # model.  Resolved *before* the cache key is formed and folded into
    # the request with "tuned" provenance, so a database change can never
    # serve a stale artifact through the cache and a tuned compile never
    # shares an entry with an explicit-block one (their select paths
    # differ).  The common case — empty default database — costs one
    # length check and nothing else.
    tuned_block = None
    if block is None and tuned is not False:
        tdb = tuned if isinstance(tuned, TunedDatabase) else None
        if tdb is None:
            from ..mapping.optdb import default_tuned_database
            tdb = default_tuned_database()
        if len(tdb):
            from ..mapping.tuner import TUNER_STATS
            fp = ir_dig if ir_dig is not None else pristine_ir_digest(ir)
            with span("tune.lookup", kernel=ir.name,
                      engine=tuned_engine) as sp:
                t_entry = tdb.lookup(fp, dev.name, backend, tuned_engine)
                hit = (t_entry is not None
                       and dev.valid_block(*t_entry.block))
                sp.attrs["hit"] = hit
            TUNER_STATS.note_lookup(hit)
            if hit:
                tuned_block = (int(t_entry.block[0]),
                               int(t_entry.block[1]))

    # ---- cache lookup (single-flight per key) -----------------------------
    # the key lock held through *flight* serialises the miss -> compile
    # -> store window: when N threads race on one key, the first in
    # compiles while the rest block inside their cache_lookup span and
    # then read its stored entry as a hit — exactly one fresh compile
    key = None
    with contextlib.ExitStack() as flight:
        if store is not None:
            with span("compile.cache_lookup") as sp:
                from .. import __version__
                request = {
                    "geometry": list(geometry),
                    # "auto" = Algorithm 2 decides; a tuned block keeps
                    # its provenance in the key because the tuned select
                    # path (occupancy re-validation, possible fallback)
                    # is not the explicit-block path
                    "block": (list(block) if block is not None
                              else ["tuned"] + list(tuned_block)
                              if tuned_block is not None else "auto"),
                    "border": border_mode.value,
                    "use_texture": use_texture,
                    "use_smem": use_smem,
                    "mask_memory": (mask_memory.value
                                    if isinstance(mask_memory, MaskMemory)
                                    else mask_memory),
                    "unroll": unroll,
                    "fold_constants": fold_constants,
                    "fast_math": fast_math,
                    "emit_config_macros": emit_config_macros,
                    "vectorize": vectorize,
                    "pixels_per_thread": pixels_per_thread,
                    "bake_params": bake_params,
                }
                key = compute_key(ir_dig, dev, backend, request,
                                  __version__)
                flight.enter_context(store.locked(key))
                payload = store.get(key)
            timings["cache_lookup_ms"] = sp.duration_ms
            if payload is not None:
                try:
                    final, options, resources, selected_occ = \
                        entry_from_dict(payload)
                except (KeyError, TypeError, ValueError):
                    # an entry this build cannot decode (hand-edited
                    # file, foreign layout) is a miss: evict it so the
                    # recompile below re-stores a good one
                    store.invalidate(key)
                    payload = None
            if payload is not None:
                diags = _verify(ir, options, strict=strict,
                                timings=timings, store=store,
                                ir_dig=ir_dig)
                timings["total_ms"] = (time.perf_counter() - t_start) * 1e3
                timings = normalize_stage_timings(timings)
                if root_span is not None:
                    root_span.attrs["from_cache"] = True
                return CompiledKernel(
                    ir=ir,
                    source=final,
                    options=options,
                    device=dev,
                    resources=resources,
                    accessors=accessor_objs,
                    iteration_space=iteration_space,
                    window=window,
                    selected_occupancy=selected_occ,
                    cache_key=key,
                    from_cache=True,
                    stage_timings=timings,
                    diagnostics=diags,
                )

        options = CodegenOptions(
            backend=backend,
            use_texture=use_texture,
            border=border_mode,
            use_smem=use_smem,
            mask_memory=mask_memory,
            block=block or (128, 1),
            unroll=unroll,
            fold_constants=fold_constants,
            fast_math=fast_math,
            emit_config_macros=emit_config_macros,
            vectorize=vectorize,
            pixels_per_thread=pixels_per_thread,
        )

        # first pass: default configuration, to learn resource usage
        with span("compile.codegen_provisional") as sp:
            provisional = generate(ir, options, launch_geometry=geometry)
        timings["codegen_provisional_ms"] = sp.duration_ms
        smem_bytes = provisional.smem_bytes
        with span("compile.resources") as sp:
            resources = estimate_resources(
                ir, dev,
                use_texture=use_texture,
                use_smem=use_smem,
                border_variants=provisional.num_variants,
                smem_bytes=smem_bytes,
                unrolled=unroll,
            )
        timings["resources_ms"] = sp.duration_ms

        selected_occ = 0.0
        if block is None:
            with span("compile.select") as sp:
                if use_smem:
                    # staging tile size depends on the block; pass the
                    # default block's demand as the constraint
                    smem_for_select = smem_tile_bytes(options.block,
                                                      window, 4)
                else:
                    smem_for_select = 0
                if tuned_block is not None:
                    # measured winner from the tuned database: re-validate
                    # against this compile's actual resource usage (the
                    # entry is keyed per kernel, not per codegen options);
                    # an unlaunchable winner falls back to Algorithm 2 —
                    # a deterministic function of the keyed inputs, so
                    # the cache key stays sound
                    try:
                        occ = compute_occupancy(
                            dev, tuned_block[0], tuned_block[1],
                            resources.registers_per_thread,
                            smem_for_select)
                        options.block = tuned_block
                        selected_occ = occ.occupancy
                        sp.attrs["tuned"] = True
                    except MappingError:
                        tuned_block = None
                if tuned_block is None:
                    # Algorithm 2
                    selection = select_configuration(
                        dev, resources.registers_per_thread,
                        smem_for_select,
                        border_handling=(border_mode
                                         == BorderMode.SPECIALIZED
                                         and window != (1, 1)),
                        image_size=geometry,
                        window=window,
                    )
                    options.block = selection.block
                    selected_occ = selection.occupancy
            timings["select_ms"] = sp.duration_ms
            # regenerate with the final configuration (the paper
            # regenerates because the dispatch constants depend on the
            # tiling)
            with span("compile.codegen_final") as sp:
                final = generate(ir, options, launch_geometry=geometry)
            timings["codegen_final_ms"] = sp.duration_ms
        else:
            final = provisional

        if store is not None and key is not None:
            with span("compile.store") as sp:
                store.put(key,
                          entry_to_dict(final, resources, selected_occ))
            timings["store_ms"] = sp.duration_ms

        diags = _verify(ir, options, strict=strict, timings=timings,
                        store=store, ir_dig=ir_dig)
        timings["total_ms"] = (time.perf_counter() - t_start) * 1e3
        timings = normalize_stage_timings(timings)
        if root_span is not None:
            root_span.attrs["from_cache"] = False
        return CompiledKernel(
            ir=ir,
            source=final,
            options=options,
            device=dev,
            resources=resources,
            accessors=accessor_objs,
            iteration_space=iteration_space,
            window=window,
            selected_occupancy=selected_occ,
            cache_key=key,
            from_cache=False,
            stage_timings=timings,
            diagnostics=diags,
        )
