"""OpenCV GPU-module baseline (paper Section VI-A.3, Tables VIII/IX).

OpenCV implements Gaussian/Sobel as *separable* row+column passes with
shared-memory staging, precalculated masks, and a configurable number of
output pixels per thread (PPT).  The timing lives in
:mod:`repro.evaluation.opencv_cmp`; this module adds the functional side:
:class:`OpenCVSeparableFilter` compiles the row and column kernels through
the normal pipeline and executes both passes on the simulator, so the
separable result can be compared numerically against the generated 2-D
convolution (they agree to float32 rounding on interior pixels; borders
differ exactly as a separable implementation's do).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Union

import numpy as np

from ..backends.base import BorderMode, CodegenOptions
from ..dsl import Accessor, Boundary, BoundaryCondition, Image, \
    IterationSpace
from ..dsl.boundary import Boundary as _B
from ..evaluation.opencv_cmp import opencv_time
from ..filters.gaussian import (
    SeparableGaussianCol,
    SeparableGaussianRow,
    col_mask,
    row_mask,
)
from ..frontend.parser import accessor_objects, parse_kernel
from ..hwmodel.database import get_device
from ..hwmodel.device import DeviceSpec
from ..ir.typecheck import typecheck_kernel
from ..sim.launch import simulate_launch


def opencv_gaussian_time(device: Union[str, DeviceSpec], size: int,
                         ppt: int, mode: Boundary, **kwargs):
    """Modelled OpenCV separable-Gaussian time (Tables VIII/IX rows)."""
    return opencv_time(device, size, ppt, mode, **kwargs)


@dataclasses.dataclass
class OpenCVSeparableFilter:
    """Functional separable Gaussian: row pass then column pass."""

    size: int = 3
    sigma: Optional[float] = None
    mode: Boundary = Boundary.CLAMP
    constant: float = 0.0

    def run(self, data: np.ndarray,
            device: Union[str, DeviceSpec] = "Tesla C2050",
            backend: str = "cuda") -> np.ndarray:
        dev = get_device(device) if isinstance(device, str) else device
        data = np.asarray(data, dtype=np.float32)
        h, w = data.shape
        mode = _B.coerce(self.mode)

        # pass 1: rows
        img_in = Image(w, h, float).set_data(data)
        img_mid = Image(w, h, float)
        bc_row = BoundaryCondition(img_in, self.size, 1, mode,
                                   constant=self.constant)
        row_kernel = SeparableGaussianRow(
            IterationSpace(img_mid), Accessor(bc_row),
            row_mask(self.size, self.sigma), self.size // 2)
        self._launch(row_kernel, dev, backend)

        # pass 2: columns
        img_out = Image(w, h, float)
        bc_col = BoundaryCondition(img_mid, 1, self.size, mode,
                                   constant=self.constant)
        col_kernel = SeparableGaussianCol(
            IterationSpace(img_out), Accessor(bc_col),
            col_mask(self.size, self.sigma), self.size // 2)
        self._launch(col_kernel, dev, backend)
        return img_out.get_data()

    @staticmethod
    def _launch(kernel, dev: DeviceSpec, backend: str) -> None:
        ir = typecheck_kernel(parse_kernel(kernel))
        options = CodegenOptions(
            backend=backend,
            border=BorderMode.INLINE,   # OpenCV: per-pixel conditionals
            use_smem=True,
            block=(32, 8),
        )
        simulate_launch(ir, accessor_objects(kernel),
                        kernel.iteration_space, options, dev)
