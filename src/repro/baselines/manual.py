"""Manual CUDA/OpenCL implementations (paper Section VI-A.1).

"The basic version of the manual implementations uses straightforward
CUDA/OpenCL code.  These versions are then subsequently improved to utilize
linear texture memory in CUDA (image objects in OpenCL), constant memory to
store the filter masks, and combinations of both."

A manual implementation differs from generated code in exactly two ways our
pipeline can express:

* boundary handling is *inline* — per-access conditionals evaluated by every
  thread ("the conditional statements have to be evaluated for each pixel,
  although it is only required at the image border"), or delegated to
  texture-hardware address modes (+2DTex / +ImgBH);
* no automatic configuration selection — the fixed 128x1 block of the
  tables.

This module exposes them as named variants; the timing comes from the same
mechanisms-based model as everything else.  For functional output, compile
the corresponding filter kernel with ``border="inline"`` /
``border="hardware"`` — the simulator then executes exactly the manual
semantics.
"""

from __future__ import annotations

import dataclasses
from typing import List, Union

from ..dsl.boundary import Boundary
from ..evaluation.variants import (
    CellValue,
    VariantSpec,
    cuda_variants,
    evaluate_bilateral_cell,
    opencl_variants,
)
from ..hwmodel.device import DeviceSpec


@dataclasses.dataclass(frozen=True)
class ManualVariant:
    """A named manual-implementation configuration."""

    name: str
    use_texture: bool
    hardware_border: bool
    use_mask: bool

    def to_spec(self) -> VariantSpec:
        return VariantSpec(self.name, "manual", use_mask=self.use_mask,
                           use_texture=self.use_texture,
                           hardware_border=self.hardware_border)


def manual_variant_names(backend: str) -> List[str]:
    """The manual rows of the tables for *backend*."""
    source = cuda_variants() if backend == "cuda" else opencl_variants()
    return [v.name for v in source if v.kind == "manual"]


def manual_bilateral_time(device: Union[str, DeviceSpec], backend: str,
                          variant_name: str, mode: Boundary,
                          **kwargs) -> CellValue:
    """Modelled execution time of one manual bilateral variant."""
    source = cuda_variants() if backend == "cuda" else opencl_variants()
    for variant in source:
        if variant.name == variant_name and variant.kind == "manual":
            return evaluate_bilateral_cell(device, backend, variant, mode,
                                           **kwargs)
    raise KeyError(
        f"no manual variant {variant_name!r} for backend {backend!r}; "
        f"available: {manual_variant_names(backend)}")
