"""RapidMind baseline (paper Sections VI-A.2 and VII).

RapidMind was a commercial array-programming platform (successor of Sh,
absorbed into Intel ArBB): kernels are written against managed arrays whose
bounds behaviour is a property of the data, neighbouring elements are read
with ``shift()``, and the JIT generates unspecialised GPU code.

Modelled characteristics (each grounded in a published observation):

* no boundary-region specialisation — every access goes through the managed
  array's bounds machinery (a flat per-read cost);
* no constant-memory filter masks — coefficients are recomputed or streamed;
* framework overhead from the managed runtime (the ~1.5-2x gap of Tables
  II/IV);
* the Repeat mode is a software path that *crashes* on the memory-protected
  Tesla and runs ~3x slower on the Quadro;
* Mirror does not exist ("In addition to the boundary handling modes
  supported in RapidMind, we support also mirroring").

``RapidMindProgram`` also offers a functional path: it executes the same
bilateral kernel on the simulator with inline boundary handling, so output
images can be compared numerically with generated code.
"""

from __future__ import annotations

import dataclasses
from typing import Union

import numpy as np

from ..backends.base import BorderMode, CodegenOptions
from ..dsl.boundary import Boundary
from ..errors import DeviceFault, DslError
from ..evaluation.variants import (
    CellValue,
    cuda_variants,
    evaluate_bilateral_cell,
)
from ..filters.bilateral import make_bilateral
from ..frontend.parser import accessor_objects, parse_kernel
from ..hwmodel.database import get_device
from ..hwmodel.device import DeviceSpec
from ..ir.typecheck import typecheck_kernel
from ..sim.launch import simulate_launch

#: Boundary modes RapidMind supports (no Mirror).
SUPPORTED_MODES = (Boundary.UNDEFINED, Boundary.CLAMP, Boundary.REPEAT,
                   Boundary.CONSTANT)


def rapidmind_bilateral_time(device: Union[str, DeviceSpec],
                             backend: str, mode: Boundary,
                             use_texture: bool = False,
                             **kwargs) -> CellValue:
    """Modelled execution time of the RapidMind bilateral filter."""
    name = "RapidMind+Tex" if use_texture else "RapidMind"
    for variant in cuda_variants():
        if variant.name == name:
            return evaluate_bilateral_cell(device, backend, variant, mode,
                                           **kwargs)
    raise KeyError(name)


@dataclasses.dataclass
class RapidMindProgram:
    """A RapidMind-style program: bilateral filter over managed arrays.

    ``run`` executes functionally on the simulated device (inline boundary
    handling — no specialisation) and raises :class:`DeviceFault` for the
    Repeat-on-Tesla crash, mirroring the published behaviour.
    """

    sigma_d: int = 3
    sigma_r: float = 5.0
    mode: Boundary = Boundary.CLAMP
    constant: float = 0.0

    def __post_init__(self):
        self.mode = Boundary.coerce(self.mode)
        if self.mode not in SUPPORTED_MODES:
            raise DslError(
                f"RapidMind does not support boundary mode "
                f"{self.mode.value!r} (no mirroring)")

    def run(self, data: np.ndarray,
            device: Union[str, DeviceSpec] = "Tesla C2050",
            backend: str = "cuda") -> np.ndarray:
        dev = get_device(device) if isinstance(device, str) else device
        if self.mode == Boundary.REPEAT and dev.faults_on_oob:
            raise DeviceFault(
                "RapidMind Repeat boundary handling crashes on "
                f"{dev.name} (as measured in the paper)")
        h, w = data.shape
        kernel, img_in, img_out = make_bilateral(
            w, h, sigma_d=self.sigma_d, sigma_r=self.sigma_r,
            boundary=self.mode, boundary_constant=self.constant,
            data=data)
        ir = typecheck_kernel(parse_kernel(kernel))
        options = CodegenOptions(
            backend=backend,
            border=(BorderMode.NONE if self.mode == Boundary.UNDEFINED
                    else BorderMode.INLINE),
            block=(128, 1),
        )
        simulate_launch(ir, accessor_objects(kernel),
                        kernel.iteration_space, options, dev)
        return img_out.get_data()
