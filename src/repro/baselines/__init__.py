"""Baseline implementations from the paper's evaluation (Section VI).

* :mod:`repro.baselines.manual` — hand-written CUDA/OpenCL variants
  (straightforward, +Tex/+Img, +2DTex/+ImgBH, +Mask combinations);
* :mod:`repro.baselines.rapidmind` — the RapidMind multi-core development
  platform modelled as an array-programming framework without border
  specialisation;
* :mod:`repro.baselines.opencv` — OpenCV's GPU separable filters (PPT=8 /
  PPT=1), including a *functional* separable execution path on the
  simulator for numerical comparison against the generated 2-D kernels.
"""

from .manual import ManualVariant, manual_bilateral_time, manual_variant_names  # noqa: F401
from .rapidmind import RapidMindProgram, rapidmind_bilateral_time  # noqa: F401
from .opencv import OpenCVSeparableFilter, opencv_gaussian_time  # noqa: F401
