"""Scalar pixel/value types shared by the DSL, the IR and the backends.

HIPAcc images are templated C++ classes (``Image<float>``); here a
:class:`ScalarType` carries the C name for each backend, the matching NumPy
dtype used by the simulator, and enough metadata (size, signedness,
floatness) for type inference in the frontend.
"""

from __future__ import annotations

import dataclasses
from typing import Union

import numpy as np

from .errors import TypeError_


@dataclasses.dataclass(frozen=True)
class ScalarType:
    """A scalar element type usable for pixels, masks and kernel locals."""

    name: str              # canonical name used in diagnostics ("float")
    cuda_name: str         # spelling in CUDA C ("float")
    opencl_name: str       # spelling in OpenCL C ("float")
    np_dtype: np.dtype     # simulator representation
    size: int              # bytes per element
    is_float: bool
    is_signed: bool

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name

    @property
    def is_integer(self) -> bool:
        return not self.is_float


def _t(name, cuda, ocl, dtype, size, is_float, is_signed) -> ScalarType:
    return ScalarType(name, cuda, ocl, np.dtype(dtype), size, is_float,
                      is_signed)


UCHAR = _t("uchar", "unsigned char", "uchar", np.uint8, 1, False, False)
CHAR = _t("char", "char", "char", np.int8, 1, False, True)
USHORT = _t("ushort", "unsigned short", "ushort", np.uint16, 2, False, False)
SHORT = _t("short", "short", "short", np.int16, 2, False, True)
UINT = _t("uint", "unsigned int", "uint", np.uint32, 4, False, False)
INT = _t("int", "int", "int", np.int32, 4, False, True)
FLOAT = _t("float", "float", "float", np.float32, 4, True, True)
DOUBLE = _t("double", "double", "double", np.float64, 8, True, True)
BOOL = _t("bool", "bool", "bool", np.bool_, 1, False, False)

#: All types addressable by name (e.g. from the DSL: ``Image(w, h, "float")``).
SCALAR_TYPES = {
    t.name: t
    for t in (UCHAR, CHAR, USHORT, SHORT, UINT, INT, FLOAT, DOUBLE, BOOL)
}

#: Python-level aliases accepted wherever a ScalarType is expected.
_PY_ALIASES = {
    float: FLOAT,
    int: INT,
    bool: BOOL,
    "float32": FLOAT,
    "float64": DOUBLE,
    "int32": INT,
    "uint32": UINT,
    "int16": SHORT,
    "uint16": USHORT,
    "int8": CHAR,
    "uint8": UCHAR,
}

TypeLike = Union[ScalarType, str, type]


def as_scalar_type(t: TypeLike) -> ScalarType:
    """Coerce a user-supplied type spec into a :class:`ScalarType`.

    Accepts ScalarType instances, canonical/NumPy-style names ("float",
    "uint8"), Python builtins (``float``, ``int``, ``bool``) and NumPy dtypes.
    """
    if isinstance(t, ScalarType):
        return t
    if isinstance(t, str):
        if t in SCALAR_TYPES:
            return SCALAR_TYPES[t]
        if t in _PY_ALIASES:
            return _PY_ALIASES[t]
        raise TypeError_(f"unknown scalar type name: {t!r}")
    if isinstance(t, type) and t in _PY_ALIASES:
        return _PY_ALIASES[t]
    try:
        dt = np.dtype(t)
    except Exception:
        raise TypeError_(f"cannot interpret {t!r} as a scalar type") from None
    for st in SCALAR_TYPES.values():
        if st.np_dtype == dt:
            return st
    raise TypeError_(f"no scalar type matches dtype {dt}")


# Promotion lattice, C-style: bool < integers (by size, unsigned wins ties)
# < float < double.  Small integers promote to int first, like C.
_RANK = {
    BOOL.name: 0,
    CHAR.name: 1, UCHAR.name: 1,
    SHORT.name: 2, USHORT.name: 2,
    INT.name: 3, UINT.name: 3,
    FLOAT.name: 4,
    DOUBLE.name: 5,
}


def promote(a: ScalarType, b: ScalarType) -> ScalarType:
    """Usual-arithmetic-conversion result type of a binary op on *a*, *b*."""
    if a == b:
        if _RANK[a.name] < _RANK[INT.name]:
            return INT  # integer promotion of sub-int types
        return a
    ra, rb = _RANK[a.name], _RANK[b.name]
    hi = a if ra >= rb else b
    lo = b if ra >= rb else a
    if hi.is_float:
        return hi
    # integer/integer: promote both to at least int; unsigned wins at equal
    # rank (C semantics, relevant for index arithmetic in generated code).
    if max(ra, rb) < _RANK[INT.name]:
        return INT
    if ra == rb and (not a.is_signed or not b.is_signed):
        return a if not a.is_signed else b
    del lo
    return hi if _RANK[hi.name] >= _RANK[INT.name] else INT
