"""Optimization-selection databases (paper Section V-B + auto-tuning).

Two tables live here:

* :class:`OptimizationDatabase` — the paper's original knowledge base.
  "The knowledge we get from our micro-benchmarks ... are stored in a
  database that is utilized by the source-to-source compiler to decide
  what optimization should be applied for which a) target hardware and
  b) backend."  :func:`default_database` builds it by *running* the
  micro-benchmarks in :mod:`repro.mapping.microbench` against the
  simulated devices — the same way the authors populated theirs against
  silicon.

* :class:`TunedDatabase` — the measurement-driven extension
  (docs/TUNING.md).  Where the paper's table holds per-(device, backend)
  *policy* decisions (texture path, scratchpad staging), this one holds
  per-kernel *winners*: the block configuration the auto-tuner
  (:mod:`repro.mapping.tuner`) measured as fastest, keyed by
  ``(kernel_fingerprint, device, backend, engine)``.  The fingerprint is
  the PR-1 canonical-IR digest (:func:`repro.cache.key.ir_digest` over
  the pristine IR), so two textually different kernels that lower to the
  same IR share one entry and a changed kernel can never pick up a stale
  winner.  Entries persist in an atomic, versioned on-disk JSON store:
  a torn write is impossible (temp file + ``os.replace``), a corrupt or
  stale-format store degrades to an empty database (a tuning *miss*,
  never an error) and is healed by the next save.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from ..hwmodel.database import DEVICES
from ..hwmodel.device import DeviceSpec


@dataclasses.dataclass(frozen=True)
class OptimizationEntry:
    """Per (device, backend) optimization decisions."""

    device: str
    backend: str
    padding_bytes: int            # global-memory row alignment
    texture_beneficial: bool      # read through texture/image path?
    smem_beneficial: bool         # stage local-operator tiles?
    constant_mask_static: bool    # statically initialised constant memory


class OptimizationDatabase:
    """Lookup table consulted during compilation."""

    def __init__(self):
        self._entries: Dict[Tuple[str, str], OptimizationEntry] = {}

    def add(self, entry: OptimizationEntry) -> None:
        self._entries[(entry.device, entry.backend)] = entry

    def lookup(self, device: DeviceSpec,
               backend: str) -> Optional[OptimizationEntry]:
        entry = self._entries.get((device.name, backend))
        if entry is not None:
            return entry
        # fall back to any same-architecture entry.  Sorted by device
        # name so the fallback is deterministic: dict iteration order
        # depends on insertion history, and two builds that populated
        # the table in different orders used to return different
        # entries for the same phantom device.
        for (name, be), e in sorted(self._entries.items()):
            if be != backend:
                continue
            other = DEVICES.get(name)
            if other is not None and other.architecture == \
                    device.architecture:
                return e
        return None

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self):
        return list(self._entries.values())


_default: Optional[OptimizationDatabase] = None
_default_lock = threading.Lock()


def default_database(rebuild: bool = False) -> OptimizationDatabase:
    """The database populated by the built-in micro-benchmarks (cached).

    Thread-safe: the build runs under a lock and the module global is
    published only once the database is complete, so two racing first
    callers (serve workers, parallel graph compiles) get one fully
    populated instance instead of rebuilding twice or observing a
    half-published global.
    """
    global _default
    with _default_lock:
        if _default is None or rebuild:
            from .microbench import build_database
            built = build_database()      # publish atomically: the
            _default = built              # global only ever holds a
        return _default                   # complete database


# --------------------------------------------------------------------------
# Tuned-configuration database (measurement-driven auto-tuning)
# --------------------------------------------------------------------------

#: bump to invalidate every persisted tuned entry on a format change;
#: a store with any other version loads as empty (a miss) and is
#: rewritten at the current version by the next save
TUNED_FORMAT_VERSION = 1

#: engines a tuned entry may be recorded under — the provenance of its
#: measured signal (docs/TUNING.md)
TUNED_ENGINES = ("sim", "native")


@dataclasses.dataclass(frozen=True)
class TunedEntry:
    """One measured winner for ``(fingerprint, device, backend, engine)``.

    *fingerprint* is the pristine canonical-IR digest
    (:func:`repro.cache.key.pristine_ir_digest`); *signal* names the
    measurement that scored the winner (``"model"``, ``"sim"`` wall
    clock, or ``"native"`` wall clock); *score_ms* is the winning score
    in that signal's units; *trials* how many configurations were
    actually measured to find it.
    """

    fingerprint: str
    device: str
    backend: str
    engine: str
    block: Tuple[int, int]
    score_ms: float
    signal: str = "model"
    trials: int = 0
    created: float = 0.0

    @property
    def key(self) -> Tuple[str, str, str, str]:
        return (self.fingerprint, self.device, self.backend, self.engine)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint,
            "device": self.device,
            "backend": self.backend,
            "engine": self.engine,
            "block": list(self.block),
            "score_ms": float(self.score_ms),
            "signal": self.signal,
            "trials": int(self.trials),
            "created": float(self.created),
        }

    @classmethod
    def from_dict(cls, raw: Any) -> "TunedEntry":
        """Strict decode; raises ``ValueError`` on any malformed field so
        the store loader can skip (heal) exactly the bad entries."""
        if not isinstance(raw, dict):
            raise ValueError("tuned entry is not an object")
        try:
            block = raw["block"]
            if (not isinstance(block, (list, tuple)) or len(block) != 2
                    or not all(isinstance(b, int) and b >= 1
                               for b in block)):
                raise ValueError(f"bad block {block!r}")
            entry = cls(
                fingerprint=str(raw["fingerprint"]),
                device=str(raw["device"]),
                backend=str(raw["backend"]),
                engine=str(raw["engine"]),
                block=(int(block[0]), int(block[1])),
                score_ms=float(raw["score_ms"]),
                signal=str(raw.get("signal", "model")),
                trials=int(raw.get("trials", 0)),
                created=float(raw.get("created", 0.0)),
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed tuned entry: {exc}") from None
        if not entry.fingerprint or entry.score_ms < 0:
            raise ValueError("malformed tuned entry: empty fingerprint "
                             "or negative score")
        return entry


class TunedDatabase:
    """Persistent store of measured per-kernel winners.

    In-memory map with an optional on-disk JSON document behind it.
    Writes are atomic (temp file + ``os.replace``); loads are forgiving:
    an unreadable file, a foreign/stale ``format`` or a malformed entry
    never raises — bad state degrades to tuning *misses* (counted in
    :attr:`healed`) and the next :meth:`record` rewrites a clean store.
    Thread-safe: all access runs under one lock.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = os.path.abspath(path) if path else None
        self.healed = 0           # corrupt entries/stores dropped on load
        self._lock = threading.RLock()
        self._entries: Dict[Tuple[str, str, str, str], TunedEntry] = {}
        if self.path is not None:
            self._load()

    # -- queries ------------------------------------------------------------

    def lookup(self, fingerprint: str, device: str, backend: str,
               engine: str = "sim") -> Optional[TunedEntry]:
        """The tuned winner for the key, or ``None`` (a miss).

        Falls back to an entry of the same ``(fingerprint, device,
        backend)`` tuned under another engine — a native-measured winner
        is a better guess for a simulator run than Algorithm 2's static
        choice, and vice versa.  The fallback is deterministic (sorted
        by engine name).
        """
        with self._lock:
            exact = self._entries.get((fingerprint, device, backend,
                                       engine))
            if exact is not None:
                return exact
            others = [e for k, e in sorted(self._entries.items())
                      if k[0] == fingerprint and k[1] == device
                      and k[2] == backend]
            return others[0] if others else None

    def entries(self) -> List[TunedEntry]:
        with self._lock:
            return [self._entries[k] for k in sorted(self._entries)]

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # -- mutation -----------------------------------------------------------

    def record(self, entry: TunedEntry, persist: bool = True) -> None:
        """Install *entry* (replacing any previous winner for its key)
        and, with *persist* and a backing path, save the whole store."""
        if not isinstance(entry, TunedEntry):
            raise TypeError("record expects a TunedEntry")
        with self._lock:
            self._entries[entry.key] = entry
            if persist:
                self._save()

    def clear(self, disk: bool = False) -> None:
        with self._lock:
            self._entries.clear()
            if disk and self.path is not None:
                try:
                    os.unlink(self.path)
                except OSError:
                    pass

    def save(self) -> bool:
        """Force a write of the current entries; True when written."""
        with self._lock:
            return self._save()

    # -- disk layer ---------------------------------------------------------

    def _load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except FileNotFoundError:
            return
        except (OSError, ValueError):
            self.healed += 1        # unreadable/corrupt store: empty
            return
        if not isinstance(doc, dict) \
                or doc.get("format") != TUNED_FORMAT_VERSION:
            self.healed += 1        # stale/foreign layout: a miss
            return
        raw_entries = doc.get("entries")
        if not isinstance(raw_entries, list):
            self.healed += 1
            return
        for raw in raw_entries:
            try:
                entry = TunedEntry.from_dict(raw)
            except ValueError:
                self.healed += 1    # skip exactly the bad entries
                continue
            self._entries[entry.key] = entry

    def _save(self) -> bool:
        """Write the store atomically; best-effort (False on OSError)."""
        if self.path is None:
            return False
        doc = {
            "format": TUNED_FORMAT_VERSION,
            "entries": [self._entries[k].to_dict()
                        for k in sorted(self._entries)],
        }
        directory = os.path.dirname(self.path) or "."
        try:
            os.makedirs(directory, exist_ok=True)
            fd, tmp = tempfile.mkstemp(suffix=".tmp", dir=directory)
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(doc, fh, indent=1, sort_keys=True)
                    fh.write("\n")
                os.replace(tmp, self.path)   # atomic: readers never see
            except BaseException:            # a torn document
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        return True


def fresh_entry(fingerprint: str, device: str, backend: str, engine: str,
                block: Tuple[int, int], score_ms: float, signal: str,
                trials: int) -> TunedEntry:
    """A :class:`TunedEntry` stamped with the current time."""
    return TunedEntry(fingerprint=fingerprint, device=device,
                      backend=backend, engine=engine,
                      block=(int(block[0]), int(block[1])),
                      score_ms=float(score_ms), signal=signal,
                      trials=int(trials), created=time.time())


_default_tuned: Optional[TunedDatabase] = None
_default_tuned_lock = threading.Lock()


def default_tuned_database(rebuild: bool = False) -> TunedDatabase:
    """The process-wide tuned-config store the compile driver consults.

    Honors ``REPRO_OPTDB_PATH`` (on-disk location) at first use; without
    it the store is in-memory only, so a fresh process starts with an
    empty database and ``compile_kernel`` falls back to Algorithm 2
    everywhere.  Same atomic-publish locking discipline as
    :func:`default_database`.
    """
    global _default_tuned
    with _default_tuned_lock:
        if _default_tuned is None or rebuild:
            path = os.environ.get("REPRO_OPTDB_PATH") or None
            built = TunedDatabase(path=path)
            _default_tuned = built
        return _default_tuned


def set_default_tuned_database(db: Optional[TunedDatabase]) -> None:
    """Replace (or with ``None``, reset) the process-wide tuned store."""
    global _default_tuned
    with _default_tuned_lock:
        _default_tuned = db
