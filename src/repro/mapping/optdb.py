"""Optimization-selection database (paper Section V-B).

"The knowledge we get from our micro-benchmarks ... are stored in a
database that is utilized by the source-to-source compiler to decide what
optimization should be applied for which a) target hardware and b) backend.
This includes the amount of padding required for optimal memory bandwidth
utilization, whether texture memory is beneficial, or whether constant
memory should be initialized statically or dynamically."

:func:`default_database` builds the table by *running* the micro-benchmarks
in :mod:`repro.mapping.microbench` against the simulated devices — the same
way the authors populated theirs against silicon.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from ..hwmodel.database import DEVICES
from ..hwmodel.device import DeviceSpec


@dataclasses.dataclass(frozen=True)
class OptimizationEntry:
    """Per (device, backend) optimization decisions."""

    device: str
    backend: str
    padding_bytes: int            # global-memory row alignment
    texture_beneficial: bool      # read through texture/image path?
    smem_beneficial: bool         # stage local-operator tiles?
    constant_mask_static: bool    # statically initialised constant memory


class OptimizationDatabase:
    """Lookup table consulted during compilation."""

    def __init__(self):
        self._entries: Dict[Tuple[str, str], OptimizationEntry] = {}

    def add(self, entry: OptimizationEntry) -> None:
        self._entries[(entry.device, entry.backend)] = entry

    def lookup(self, device: DeviceSpec,
               backend: str) -> Optional[OptimizationEntry]:
        entry = self._entries.get((device.name, backend))
        if entry is not None:
            return entry
        # fall back to any same-architecture entry
        for (name, be), e in self._entries.items():
            if be != backend:
                continue
            other = DEVICES.get(name)
            if other is not None and other.architecture == \
                    device.architecture:
                return e
        return None

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self):
        return list(self._entries.values())


_default: Optional[OptimizationDatabase] = None


def default_database(rebuild: bool = False) -> OptimizationDatabase:
    """The database populated by the built-in micro-benchmarks (cached)."""
    global _default
    if _default is None or rebuild:
        from .microbench import build_database
        _default = build_database()
    return _default
