"""Measurement-driven auto-tuning of block configurations.

Algorithm 2 (:mod:`repro.mapping.heuristic`) is a *static* model: it
picks a configuration from occupancy and boundary-thread counts without
ever running the kernel.  Figure 4 shows the other extreme — an
exhaustive sweep of every legal configuration.  This module is the
middle path ImageCL demonstrated (PAPERS.md): score a *few* candidate
configurations from **measured** signals, search the space adaptively,
and persist the winner so later compiles get it for free.

The search (:func:`tune_kernel`):

1. **prune** — the candidate set from Algorithm 2's own enumeration is
   already sorted by the occupancy model; only the heuristic's choice
   plus the *seed_top* best-modelled candidates are measured, the rest
   are pruned without spending a trial;
2. **measure** — each trial scores one block with the selected signal:
   ``"model"`` (the deterministic timing model, via
   :func:`~repro.mapping.explore.evaluate_block`), ``"sim"`` (wall
   clock of a real simulator execution, the ``exec.launch`` span), or
   ``"native"`` (wall clock of the PR-5 native tier's ``native.exec``
   segment, falling back to the simulator when no C compiler is
   available);
3. **refine** — hill-climb around the incumbent by factor-of-two
   neighbour steps until no neighbour improves or the trial *budget*
   is exhausted.

Because the heuristic's block is always the first seed, the winner is
never worse than Algorithm 2 *on the measured signal* — the tuned
result can only tie or beat the static choice.

Winners persist in the :class:`~repro.mapping.optdb.TunedDatabase`
keyed by ``(kernel_fingerprint, device, backend, engine)``;
:func:`repro.runtime.compile.compile_kernel` consults that store before
falling back to Algorithm 2 (docs/TUNING.md).  Everything here is
traced (``tune.search`` / ``tune.trial`` spans) and counted (the
``tuner.*`` metrics namespace).
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Callable, Dict, List, Optional, Tuple, Union

from ..errors import LaunchError, MappingError
from ..hwmodel.device import DeviceSpec
from ..hwmodel.occupancy import compute_occupancy
from ..obs import get_registry, span
from .explore import ExplorationTask, evaluate_block, run_exploration_task
from .heuristic import candidate_configurations
from .optdb import (
    TunedDatabase,
    TunedEntry,
    default_tuned_database,
    fresh_entry,
)

SIGNALS = ("model", "sim", "native")

Block = Tuple[int, int]


class TunerStats:
    """Process-wide tuner counters (the ``tuner.*`` metrics source).

    ``lookups``/``hits``/``misses`` count tuned-database consultations
    by the compile driver; ``trials`` counts configurations actually
    measured, ``pruned`` candidates skipped on the occupancy model's
    word, ``sessions`` completed :func:`tune_kernel` runs and
    ``records`` winners written to a database.  All counters are
    monotonic for the life of the process; tests snapshot-and-diff.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.lookups = 0
        self.hits = 0
        self.misses = 0
        self.trials = 0
        self.pruned = 0
        self.sessions = 0
        self.records = 0

    def note_lookup(self, hit: bool) -> None:
        with self._lock:
            self.lookups += 1
            if hit:
                self.hits += 1
            else:
                self.misses += 1

    def note_search(self, trials: int, pruned: int,
                    recorded: bool) -> None:
        with self._lock:
            self.sessions += 1
            self.trials += int(trials)
            self.pruned += int(pruned)
            if recorded:
                self.records += 1

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "lookups": self.lookups,
                "hits": self.hits,
                "misses": self.misses,
                "trials": self.trials,
                "pruned": self.pruned,
                "sessions": self.sessions,
                "records": self.records,
            }

    def metrics(self) -> Dict[str, float]:
        return {f"tuner.{k}": float(v)
                for k, v in self.snapshot().items()}


TUNER_STATS = TunerStats()
get_registry().register_source("tuner", TUNER_STATS.metrics)


@dataclasses.dataclass
class TuneResult:
    """Outcome of one :func:`tune_kernel` search."""

    kernel: str
    fingerprint: str
    device: str
    backend: str
    engine: str
    #: the signal that actually scored the trials — may differ from the
    #: request (``"native"`` degrades to ``"sim"`` without a C compiler)
    signal: str
    best_block: Block
    best_ms: float
    heuristic_block: Block
    heuristic_ms: float
    #: configurations measured / skipped on the model's word / total legal
    trials: int
    pruned: int
    candidates: int
    #: every measured (block -> score) pair, for reporting
    measurements: Dict[Block, float]
    #: the winning entry (recorded into the database unless the caller
    #: opted out with ``db=False`` / ``persist=False``)
    entry: Optional[TunedEntry]
    #: the launch-parameter bundle the model signal scores — lets callers
    #: (benchmarks) run the exhaustive Figure-4 walk over the same space
    task: ExplorationTask
    wall_ms: float = 0.0

    @property
    def speedup_over_heuristic(self) -> float:
        """Heuristic score / tuned score on the measured signal
        (>= 1.0 by construction: the heuristic block is always a seed)."""
        return self.heuristic_ms / self.best_ms if self.best_ms > 0 \
            else 1.0


def _neighbours(block: Block, device: DeviceSpec) -> List[Block]:
    """Factor-of-two moves around *block*, deterministic order."""
    bx, by = block
    raw = [
        (bx * 2, by), (bx // 2, by),
        (bx, by * 2), (bx, by // 2),
        (bx * 2, by // 2), (bx // 2, by * 2),
    ]
    out: List[Block] = []
    for nb in raw:
        if nb[0] >= 1 and nb[1] >= 1 and nb not in out \
                and device.valid_block(nb[0], nb[1]):
            out.append(nb)
    return out


def _launchable(device: DeviceSpec, block: Block, regs: int,
                smem: int) -> bool:
    if not device.valid_block(block[0], block[1]):
        return False
    try:
        compute_occupancy(device, block[0], block[1], regs, smem)
    except MappingError:
        return False
    return True


def _sim_measure(kernel, backend: str, dev: DeviceSpec,
                 cache, compile_options: Dict,
                 repeats: int) -> Callable[[Block], float]:
    """Wall clock of a real simulator execution, best of *repeats*."""
    from ..runtime.compile import compile_kernel

    def measure(block: Block) -> float:
        compiled = compile_kernel(kernel, backend=backend, device=dev,
                                  block=block, cache=cache, tuned=False,
                                  **compile_options)
        best = float("inf")
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            compiled.execute()
            best = min(best, (time.perf_counter() - t0) * 1e3)
        return best

    return measure


def _native_measure(kernel, backend: str, dev: DeviceSpec,
                    cache, compile_options: Dict, repeats: int
                    ) -> Tuple[Callable[[Block], float], List[str]]:
    """Wall clock of the native tier running the kernel as a one-node
    graph.  ``engines_seen`` records what actually ran — when the native
    tier is unavailable the wall clock is the simulator's, and the
    session degrades its signal label to ``"sim"``."""
    from ..graph.builder import PipelineGraph
    from ..graph.scheduler import execute_graph

    engines_seen: List[str] = []

    def measure(block: Block) -> float:
        best = float("inf")
        for _ in range(max(1, repeats)):
            graph = PipelineGraph(name=f"tune_{kernel.__class__.__name__}")
            graph.add_kernel(kernel, backend=backend, device=dev,
                             block=block, tuned=False, **compile_options)
            report = execute_graph(graph, cache=cache, fuse=False,
                                   engine="native",
                                   register_metrics=False, lint=False)
            engines_seen.append(report.engine_used)
            best = min(best, report.nodes[0].wall_ms)
        return best

    return measure, engines_seen


def tune_kernel(kernel,
                backend: str = "cuda",
                device: Union[None, str, DeviceSpec] = None,
                engine: str = "sim",
                signal: Optional[str] = None,
                budget: int = 16,
                seed_top: int = 4,
                repeats: int = 3,
                db: Union[None, bool, TunedDatabase] = None,
                persist: bool = True,
                cache=None,
                compile_options: Optional[Dict] = None) -> TuneResult:
    """Search for the fastest block configuration of *kernel* and
    record the winner.

    *engine* names the execution tier the entry is tuned **for**
    (``"sim"`` or ``"native"``) and keys the database record; *signal*
    names the measurement that scores trials (defaults to the engine's
    natural signal; ``"model"`` gives a deterministic, noise-free
    search useful for tests and benchmarks).  *budget* caps the number
    of measured configurations, *seed_top* how many of the
    best-modelled candidates are measured besides the heuristic's
    choice; everything else in the candidate set is pruned on the
    occupancy model's word.  *db* is the target
    :class:`~repro.mapping.optdb.TunedDatabase` (default: the
    process-wide store), ``False`` skips recording entirely, as does
    ``persist=False`` (which still returns the would-be entry).
    """
    from ..cache.key import pristine_ir_digest
    from ..mapping.optdb import TUNED_ENGINES
    from ..runtime.compile import compile_kernel

    if engine not in TUNED_ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {TUNED_ENGINES}")
    if signal is None:
        signal = "native" if engine == "native" else "sim"
    if signal not in SIGNALS:
        raise ValueError(
            f"unknown signal {signal!r}; expected one of {SIGNALS}")
    compile_options = dict(compile_options or {})
    # idempotent: keeps the "tuner" source alive even after a test or a
    # host swapped/cleared the process registry since import
    get_registry().register_source("tuner", TUNER_STATS.metrics)
    t_start = time.perf_counter()

    with span("tune.search", backend=backend, engine=engine,
              signal=signal, budget=budget) as search_span:
        # ---- baseline compile: Algorithm 2's choice + resource usage ----
        base = compile_kernel(kernel, backend=backend, device=device,
                              cache=cache, tuned=False, **compile_options)
        dev = base.device
        fingerprint = pristine_ir_digest(base.ir)
        heuristic_block = (int(base.options.block[0]),
                           int(base.options.block[1]))
        regs = base.resources.registers_per_thread
        smem = base.source.smem_bytes
        search_span.attrs["kernel"] = base.ir.name

        task = ExplorationTask(
            device=dev, mix=base.resources.instruction_mix,
            width=base.iteration_space.width,
            height=base.iteration_space.height,
            window=base.window,
            boundary_mode=base.dominant_boundary_mode(),
            backend=backend, border=base.options.border,
            use_texture=base.options.use_texture,
            mask_memory=base.options.mask_memory,
            regs_per_thread=regs, smem_per_block=smem)

        candidates = candidate_configurations(dev, regs, smem)

        engines_seen: List[str] = []
        if signal == "model":
            def raw_measure(block: Block) -> float:
                return evaluate_block(task, block).time_ms
        elif signal == "sim":
            raw_measure = _sim_measure(kernel, backend, dev, cache,
                                       compile_options, repeats)
        else:
            raw_measure, engines_seen = _native_measure(
                kernel, backend, dev, cache, compile_options, repeats)

        measured: Dict[Block, float] = {}

        def measure(block: Block) -> Optional[float]:
            """Score *block* once; None = budget exhausted or
            unlaunchable (neither consumes a trial twice)."""
            block = (int(block[0]), int(block[1]))
            if block in measured:
                return measured[block]
            if len(measured) >= budget:
                return None
            if not _launchable(dev, block, regs, smem):
                return None
            with span("tune.trial", block=f"{block[0]}x{block[1]}",
                      signal=signal) as sp:
                try:
                    ms = raw_measure(block)
                except LaunchError:
                    return None
                sp.attrs["score_ms"] = ms
            measured[block] = ms
            return ms

        # ---- seed: the heuristic's block first, then the model's top ----
        seeds: List[Block] = [heuristic_block]
        for cand in candidates[:max(0, seed_top)]:
            if cand.block not in seeds:
                seeds.append(cand.block)
        for blk in seeds:
            measure(blk)
        if not measured:
            raise MappingError(
                f"auto-tuner could not measure any configuration of "
                f"{base.ir.name!r} on {dev.name}")

        # ---- refine: factor-of-two hill-climb around the incumbent ------
        best_block = min(sorted(measured), key=lambda b: measured[b])
        improved = True
        while improved and len(measured) < budget:
            improved = False
            for nb in _neighbours(best_block, dev):
                ms = measure(nb)
                if ms is not None and ms < measured[best_block]:
                    best_block = nb
                    improved = True

        best_ms = measured[best_block]
        heuristic_ms = measured[heuristic_block]
        trials = len(measured)
        measured_candidates = sum(1 for c in candidates
                                  if c.block in measured)
        pruned = len(candidates) - measured_candidates

        signal_used = signal
        if signal == "native" and engines_seen \
                and "native" not in engines_seen:
            signal_used = "sim"       # the native tier never actually ran

        # ---- record the winner ------------------------------------------
        entry = fresh_entry(fingerprint, dev.name, backend, engine,
                            best_block, best_ms, signal_used, trials)
        recorded = False
        if db is not False and persist:
            target = db if isinstance(db, TunedDatabase) \
                else default_tuned_database()
            target.record(entry)
            recorded = True
        TUNER_STATS.note_search(trials=trials, pruned=pruned,
                                recorded=recorded)
        search_span.attrs["trials"] = trials
        search_span.attrs["best"] = f"{best_block[0]}x{best_block[1]}"

        return TuneResult(
            kernel=base.ir.name,
            fingerprint=fingerprint,
            device=dev.name,
            backend=backend,
            engine=engine,
            signal=signal_used,
            best_block=best_block,
            best_ms=best_ms,
            heuristic_block=heuristic_block,
            heuristic_ms=heuristic_ms,
            trials=trials,
            pruned=pruned,
            candidates=len(candidates),
            measurements=dict(measured),
            entry=entry,
            task=task,
            wall_ms=(time.perf_counter() - t_start) * 1e3,
        )


def exhaustive_best(result: TuneResult) -> Tuple[Block, float]:
    """The Figure-4 exhaustive optimum over *result*'s model space.

    Only comparable to a ``signal="model"`` tune (same scorer); used by
    ``benchmarks/bench_autotune.py`` to report the
    heuristic-vs-tuned-vs-exhaustive gap.
    """
    points = run_exploration_task(result.task)
    if not points:
        raise LaunchError("no configuration could be explored")
    best = min(points, key=lambda p: p.time_ms)
    return best.block, best.time_ms
