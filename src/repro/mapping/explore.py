"""Configuration-space exploration (paper Section V-D, Figure 4).

"Our source-to-source compiler can generate code that explores all possible
configurations for a given kernel" — the generated variant replaces the
dispatch constants by macros set at JIT time.  Here the exploration walks
the same candidate set and evaluates each configuration with the timing
model, returning the series Figure 4 plots (execution time vs. block size,
multiple points per thread count = different tilings).

Exploration points are independent, so the walk parallelises trivially:
``explore_configurations(..., workers=N)`` fans the candidate set out over
a :mod:`concurrent.futures` pool, and :func:`explore_many` runs whole
exploration tasks (one per device / kernel, the Figure-4 sweep shape) in
parallel.  Both paths return exactly what the serial walk returns — same
points, same ``LaunchError``-skipping, same canonical ordering — which
``tests/test_parallel_explore.py`` locks down.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
from typing import List, Optional, Sequence, Tuple

from ..backends.base import BorderMode, MaskMemory
from ..dsl.boundary import Boundary
from ..errors import LaunchError
from ..hwmodel.device import DeviceSpec
from ..ir.analysis import InstructionMix
from ..obs import child_of, current_id, span
from ..sim.timing import LaunchSpec, estimate_time
from .heuristic import Candidate, candidate_configurations


@dataclasses.dataclass(frozen=True)
class ExplorationPoint:
    """One explored configuration: Figure 4 plots ms against threads."""

    block: Tuple[int, int]
    threads: int
    time_ms: float
    occupancy: float


@dataclasses.dataclass(frozen=True)
class ExplorationTask:
    """One full exploration — the unit :func:`explore_many` parallelises.

    Mirrors the keyword surface of :func:`explore_configurations`; being a
    frozen dataclass of picklable fields, tasks can cross process
    boundaries for multi-core sweeps.
    """

    device: DeviceSpec
    mix: InstructionMix
    width: int
    height: int
    window: Tuple[int, int]
    boundary_mode: Boundary = Boundary.CLAMP
    backend: str = "cuda"
    border: BorderMode = BorderMode.SPECIALIZED
    use_texture: bool = False
    mask_memory: MaskMemory = MaskMemory.CONSTANT
    regs_per_thread: int = 20
    smem_per_block: int = 0


def _launch_spec(task: ExplorationTask, block: Tuple[int, int]
                 ) -> LaunchSpec:
    return LaunchSpec(
        device=task.device,
        backend=task.backend,
        width=task.width,
        height=task.height,
        block=block,
        window=task.window,
        mix=task.mix,
        boundary_mode=task.boundary_mode,
        border=task.border,
        use_texture=task.use_texture,
        mask_memory=task.mask_memory,
        regs_per_thread=task.regs_per_thread,
        smem_bytes_per_block=task.smem_per_block,
    )


def _evaluate_candidates(task: ExplorationTask,
                         candidates: Sequence[Candidate]
                         ) -> List[ExplorationPoint]:
    """Evaluate a slice of the candidate set (runs in pool workers too)."""
    points: List[ExplorationPoint] = []
    for cand in candidates:
        try:
            t = estimate_time(_launch_spec(task, cand.block))
        except LaunchError:
            continue            # "will not run on a second device at all"
        points.append(ExplorationPoint(
            block=cand.block,
            threads=cand.threads,
            time_ms=t.total_ms,
            occupancy=t.occupancy,
        ))
    return points


def _evaluate_chunk(task: ExplorationTask,
                    candidates: Sequence[Candidate],
                    parent_token: Optional[int] = None
                    ) -> List[ExplorationPoint]:
    """One worker's share, traced as ``explore.chunk`` and parented to
    the submitting thread's ``explore`` span (thread pools only: a
    process-pool worker has no tracer, so its spans are not recorded)."""
    with child_of(parent_token):
        with span("explore.chunk", candidates=len(candidates)):
            return _evaluate_candidates(task, candidates)


def _chunks(items: Sequence, n: int) -> List[List]:
    """Split *items* into at most *n* contiguous, near-equal chunks."""
    n = max(1, min(n, len(items)))
    size, extra = divmod(len(items), n)
    out, start = [], 0
    for i in range(n):
        end = start + size + (1 if i < extra else 0)
        out.append(list(items[start:end]))
        start = end
    return out


def _sorted_points(points: List[ExplorationPoint]
                   ) -> List[ExplorationPoint]:
    # (threads, block_y) is unique per candidate block, so this canonical
    # order is independent of evaluation order — serial and parallel walks
    # return identical lists
    points.sort(key=lambda p: (p.threads, p.block[1]))
    return points


def explore_configurations(device: DeviceSpec,
                           mix: InstructionMix,
                           width: int, height: int,
                           window: Tuple[int, int],
                           boundary_mode: Boundary = Boundary.CLAMP,
                           backend: str = "cuda",
                           border: BorderMode = BorderMode.SPECIALIZED,
                           use_texture: bool = False,
                           mask_memory: MaskMemory = MaskMemory.CONSTANT,
                           regs_per_thread: int = 20,
                           smem_per_block: int = 0,
                           workers: Optional[int] = None,
                           use_processes: bool = False
                           ) -> List[ExplorationPoint]:
    """Evaluate every legal configuration; sorted by thread count then y.

    *workers* > 1 evaluates candidate chunks concurrently (threads by
    default, processes with *use_processes* for CPU-bound multi-core
    sweeps); the result is identical to the serial walk.
    """
    task = ExplorationTask(
        device=device, mix=mix, width=width, height=height, window=window,
        boundary_mode=boundary_mode, backend=backend, border=border,
        use_texture=use_texture, mask_memory=mask_memory,
        regs_per_thread=regs_per_thread, smem_per_block=smem_per_block)
    candidates = candidate_configurations(device, regs_per_thread,
                                          smem_per_block)
    with span("explore", device=device.name, backend=backend,
              candidates=len(candidates)):
        if not workers or workers <= 1 or len(candidates) < 2:
            return _sorted_points(_evaluate_candidates(task, candidates))

        token = current_id()
        pool_cls = (concurrent.futures.ProcessPoolExecutor if use_processes
                    else concurrent.futures.ThreadPoolExecutor)
        chunks = _chunks(candidates, workers)
        points: List[ExplorationPoint] = []
        with pool_cls(max_workers=len(chunks)) as pool:
            for chunk_points in pool.map(_evaluate_chunk,
                                         [task] * len(chunks), chunks,
                                         [token] * len(chunks)):
                points.extend(chunk_points)
        return _sorted_points(points)


def evaluate_block(task: ExplorationTask,
                   block: Tuple[int, int]) -> ExplorationPoint:
    """Evaluate one specific *block* under *task*'s launch parameters.

    The point-wise unit behind both the exhaustive walk and the
    auto-tuner's model signal (:mod:`repro.mapping.tuner`); also how
    :func:`repro.evaluation.figure4.figure4_exploration` scores a
    heuristic choice that the candidate walk did not visit.  Raises
    :class:`~repro.errors.LaunchError` when the configuration cannot
    launch at all — callers must not paper over that with a substitute
    time.
    """
    t = estimate_time(_launch_spec(task, tuple(block)))
    return ExplorationPoint(
        block=(int(block[0]), int(block[1])),
        threads=int(block[0]) * int(block[1]),
        time_ms=t.total_ms,
        occupancy=t.occupancy,
    )


def run_exploration_task(task: ExplorationTask) -> List[ExplorationPoint]:
    """Run one complete exploration (module-level, hence picklable)."""
    candidates = candidate_configurations(task.device, task.regs_per_thread,
                                          task.smem_per_block)
    return _sorted_points(_evaluate_candidates(task, candidates))


def explore_many(tasks: Sequence[ExplorationTask],
                 workers: Optional[int] = None,
                 use_processes: bool = False
                 ) -> List[List[ExplorationPoint]]:
    """Run several explorations, optionally in parallel.

    This is the chunky unit of parallelism for Figure-4-style sweeps over
    devices and kernels: each task amortises pool overhead over a whole
    candidate walk.  Results keep the order of *tasks*.
    """
    tasks = list(tasks)
    if not workers or workers <= 1 or len(tasks) < 2:
        return [run_exploration_task(t) for t in tasks]
    pool_cls = (concurrent.futures.ProcessPoolExecutor if use_processes
                else concurrent.futures.ThreadPoolExecutor)
    with pool_cls(max_workers=min(workers, len(tasks))) as pool:
        return list(pool.map(run_exploration_task, tasks))


def best_point(points: List[ExplorationPoint]) -> ExplorationPoint:
    if not points:
        raise LaunchError("no configuration could be explored")
    return min(points, key=lambda p: p.time_ms)
