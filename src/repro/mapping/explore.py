"""Configuration-space exploration (paper Section V-D, Figure 4).

"Our source-to-source compiler can generate code that explores all possible
configurations for a given kernel" — the generated variant replaces the
dispatch constants by macros set at JIT time.  Here the exploration walks
the same candidate set and evaluates each configuration with the timing
model, returning the series Figure 4 plots (execution time vs. block size,
multiple points per thread count = different tilings)."""

from __future__ import annotations

import dataclasses
from typing import List, Tuple

from ..backends.base import BorderMode, MaskMemory
from ..dsl.boundary import Boundary
from ..errors import LaunchError
from ..hwmodel.device import DeviceSpec
from ..ir.analysis import InstructionMix
from ..sim.timing import LaunchSpec, estimate_time
from .heuristic import candidate_configurations


@dataclasses.dataclass(frozen=True)
class ExplorationPoint:
    """One explored configuration: Figure 4 plots ms against threads."""

    block: Tuple[int, int]
    threads: int
    time_ms: float
    occupancy: float


def explore_configurations(device: DeviceSpec,
                           mix: InstructionMix,
                           width: int, height: int,
                           window: Tuple[int, int],
                           boundary_mode: Boundary = Boundary.CLAMP,
                           backend: str = "cuda",
                           border: BorderMode = BorderMode.SPECIALIZED,
                           use_texture: bool = False,
                           mask_memory: MaskMemory = MaskMemory.CONSTANT,
                           regs_per_thread: int = 20,
                           smem_per_block: int = 0
                           ) -> List[ExplorationPoint]:
    """Evaluate every legal configuration; sorted by thread count then y."""
    points: List[ExplorationPoint] = []
    for cand in candidate_configurations(device, regs_per_thread,
                                         smem_per_block):
        spec = LaunchSpec(
            device=device,
            backend=backend,
            width=width,
            height=height,
            block=cand.block,
            window=window,
            mix=mix,
            boundary_mode=boundary_mode,
            border=border,
            use_texture=use_texture,
            mask_memory=mask_memory,
            regs_per_thread=regs_per_thread,
            smem_bytes_per_block=smem_per_block,
        )
        try:
            t = estimate_time(spec)
        except LaunchError:
            continue
        points.append(ExplorationPoint(
            block=cand.block,
            threads=cand.threads,
            time_ms=t.total_ms,
            occupancy=t.occupancy,
        ))
    points.sort(key=lambda p: (p.threads, p.block[1]))
    return points


def best_point(points: List[ExplorationPoint]) -> ExplorationPoint:
    if not points:
        raise LaunchError("no configuration could be explored")
    return min(points, key=lambda p: p.time_ms)
