"""Micro-benchmarks populating the optimization-selection database.

The paper bases its decisions "on our own micro-benchmarks for typical
kernel candidates from the medical domain as well as on other
micro-benchmarks available online" [8], [9].  We regenerate that knowledge
against the simulated devices: for each (device, backend) pair, time a
representative local operator with/without the texture path and with/without
scratchpad staging and record which wins.
"""

from __future__ import annotations

from typing import Tuple

from ..backends.base import BorderMode, MaskMemory
from ..dsl.boundary import Boundary
from ..errors import LaunchError
from ..hwmodel.database import DEVICES
from ..hwmodel.device import DeviceSpec
from ..ir.analysis import InstructionMix
from ..sim.timing import LaunchSpec, estimate_time
from .optdb import OptimizationDatabase, OptimizationEntry

#: representative medical-domain local operator: 5x5 convolution,
#: memory-heavy, modest compute (Gaussian-like)
_BENCH_WINDOW: Tuple[int, int] = (5, 5)
_BENCH_SIZE = (2048, 2048)


def _bench_mix(window: Tuple[int, int]) -> InstructionMix:
    taps = window[0] * window[1]
    return InstructionMix(
        alu=8.0 * taps,
        sfu=0.0,
        global_reads=float(taps),
        mask_reads=float(taps),
        branches=2.0 * window[1],
        reads_by_accessor={"input": float(taps)},
    )


def _variant_ms(device: DeviceSpec, backend: str, use_texture: bool,
                use_smem: bool, block=(128, 1)) -> float:
    mix = _bench_mix(_BENCH_WINDOW)
    smem_bytes = 0
    if use_smem:
        bx, by = block
        wx, wy = _BENCH_WINDOW
        smem_bytes = (by + wy - 1) * (bx + wx - 1 + 1) * 4
    spec = LaunchSpec(
        device=device,
        backend=backend,
        width=_BENCH_SIZE[0],
        height=_BENCH_SIZE[1],
        block=block,
        window=_BENCH_WINDOW,
        mix=mix,
        boundary_mode=Boundary.CLAMP,
        border=BorderMode.SPECIALIZED,
        use_texture=use_texture,
        use_smem=use_smem,
        mask_memory=MaskMemory.CONSTANT,
        smem_bytes_per_block=smem_bytes,
    )
    return estimate_time(spec).total_ms


def benchmark_device(device: DeviceSpec,
                     backend: str) -> OptimizationEntry:
    """Run the micro-benchmark suite for one (device, backend) pair."""
    base = _variant_ms(device, backend, use_texture=False, use_smem=False)
    tex = _variant_ms(device, backend, use_texture=True, use_smem=False)
    try:
        smem = _variant_ms(device, backend, use_texture=False,
                           use_smem=True)
    except LaunchError:
        smem = float("inf")
    return OptimizationEntry(
        device=device.name,
        backend=backend,
        padding_bytes=device.memory.coalesce_segment,
        texture_beneficial=tex < base * 0.995,
        smem_beneficial=smem < min(base, tex) * 0.995,
        constant_mask_static=True,   # static wins whenever masks are known
    )


def build_database() -> OptimizationDatabase:
    """Benchmark every device in the hardware database."""
    db = OptimizationDatabase()
    for device in DEVICES.values():
        backends = ["cuda", "opencl"] if device.vendor == "NVIDIA" \
            else ["opencl"]
        for backend in backends:
            if not device.supports_backend(backend):
                continue
            db.add(benchmark_device(device, backend))
    return db
