"""Algorithm 2: automatic kernel configuration and tiling selection.

Direct transcription of the paper's heuristic:

1. keep configurations whose thread count is a multiple of the SIMD width
   (coalesced accesses) and within the device's resource limits;
2. sort by descending occupancy, ascending thread count;
3. *without* border handling: take the top configuration, tile preferring
   the x-dimension (1-D blocks like 128x1, "typically selected by expert
   programmers");
4. *with* border handling: among the highest-occupancy configurations, pick
   the tiling (preferring y, x pinned near the SIMD width) that minimises
   the number of threads executing boundary-handling conditionals — e.g.
   prefer 32x6 over 32x4 for a 13x13 window.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from ..backends.border import border_thread_count
from ..errors import MappingError
from ..hwmodel.device import DeviceSpec
from ..hwmodel.occupancy import Occupancy, compute_occupancy


@dataclasses.dataclass(frozen=True)
class Candidate:
    """One legal (block, occupancy) pair."""

    block: Tuple[int, int]
    occupancy: Occupancy

    @property
    def threads(self) -> int:
        return self.block[0] * self.block[1]


@dataclasses.dataclass(frozen=True)
class SelectedConfig:
    """Heuristic output: the launch configuration for one kernel."""

    block: Tuple[int, int]
    occupancy: float
    boundary_threads: Optional[int] = None
    considered: int = 0


def _tilings(total: int, device: DeviceSpec) -> List[Tuple[int, int]]:
    """All 2-D factorisations of *total* threads with power-of-two x."""
    out = []
    bx = 8
    while bx <= total:
        if total % bx == 0:
            by = total // bx
            if device.valid_block(bx, by):
                out.append((bx, by))
        bx *= 2
    return out


def candidate_configurations(device: DeviceSpec, regs_per_thread: int,
                             smem_per_block: int = 0,
                             include_tilings: bool = True
                             ) -> List[Candidate]:
    """Enumerate legal configurations (Algorithm 2 lines 1-3).

    Thread totals run over multiples of the SIMD width; per total, all
    power-of-two-x tilings (or just the 1-D shape when *include_tilings* is
    off).  Configurations that cannot launch are dropped — these are
    exactly the ones the paper says "will not run on a second device at
    all".
    """
    candidates: List[Candidate] = []
    seen = set()
    total = device.simd_width
    while total <= device.max_threads_per_block:
        shapes = _tilings(total, device) if include_tilings else \
            ([(total, 1)] if device.valid_block(total, 1) else [])
        for block in shapes:
            if block in seen:
                continue
            seen.add(block)
            try:
                occ = compute_occupancy(device, block[0], block[1],
                                        regs_per_thread, smem_per_block)
            except MappingError:
                continue
            candidates.append(Candidate(block, occ))
        total += device.simd_width
    if not candidates:
        raise MappingError(
            f"no legal kernel configuration on {device.name} for "
            f"{regs_per_thread} regs/thread, {smem_per_block} B smem")
    candidates.sort(key=lambda c: (-c.occupancy.occupancy, c.threads))
    return candidates


def _prefer_axis(candidates: List[Candidate], total: int,
                 prefer_y: bool, device: DeviceSpec) -> Tuple[int, int]:
    """Tiling of *total* threads preferring one axis (Algorithm 2 lines
    6/20): x-preferred gives 1-D rows (128x1); y-preferred pins x at the
    SIMD width (32x6 style) to keep coalescing while shrinking the border
    column count."""
    if not prefer_y:
        if device.valid_block(total, 1):
            return (total, 1)
        # fall back to widest legal x
        bx = total
        while bx > 1 and not device.valid_block(bx, total // bx):
            bx //= 2
        return (bx, total // bx)
    bx = min(device.simd_width, total)
    while total % bx != 0 and bx > 1:
        bx //= 2
    return (bx, total // bx)


def select_configuration(device: DeviceSpec, regs_per_thread: int,
                         smem_per_block: int = 0,
                         border_handling: bool = False,
                         image_size: Optional[Tuple[int, int]] = None,
                         window: Tuple[int, int] = (1, 1)
                         ) -> SelectedConfig:
    """Run Algorithm 2 and return the chosen configuration + tiling."""
    candidates = candidate_configurations(device, regs_per_thread,
                                          smem_per_block)

    if not border_handling or image_size is None:
        best = candidates[0]
        block = _prefer_axis(candidates, best.threads, prefer_y=False,
                             device=device)
        try:
            occ = compute_occupancy(device, block[0], block[1],
                                    regs_per_thread, smem_per_block)
        except MappingError:
            block, occ = best.block, best.occupancy
        return SelectedConfig(block=block, occupancy=occ.occupancy,
                              considered=len(candidates))

    width, height = image_size
    top_occ = candidates[0].occupancy.occupancy
    top = [c for c in candidates
           if c.occupancy.occupancy >= top_occ - 1e-9]

    # line 5-7: initial choice = first configuration, y-preferred tiling
    best_block = _prefer_axis(candidates, candidates[0].threads,
                              prefer_y=True, device=device)
    best_bh = border_thread_count(width, height, best_block, window)
    best_occ = candidates[0].occupancy.occupancy

    # lines 8-17: among the highest-occupancy candidates, minimise the
    # boundary-handling thread count
    seen_totals = set()
    for cand in top:
        if cand.threads in seen_totals:
            continue
        seen_totals.add(cand.threads)
        block = _prefer_axis(candidates, cand.threads, prefer_y=True,
                             device=device)
        bh = border_thread_count(width, height, block, window)
        if bh < best_bh:
            best_block, best_bh = block, bh
            best_occ = cand.occupancy.occupancy
    return SelectedConfig(block=best_block, occupancy=best_occ,
                          boundary_threads=best_bh,
                          considered=len(candidates))
