"""Device-specific mapping (paper Section V).

* :mod:`repro.mapping.heuristic` — **Algorithm 2**: occupancy-driven kernel
  configuration and 2-D tiling selection, minimising boundary-handling
  threads when border code was generated.
* :mod:`repro.mapping.explore` — exhaustive configuration exploration
  (Section V-D, Figure 4).
* :mod:`repro.mapping.optdb` — the optimization-selection database fed by
  micro-benchmarks (Section V-B): texture path, scratchpad staging, memory
  padding, constant-memory initialisation per device/backend.
"""

from .heuristic import SelectedConfig, candidate_configurations, select_configuration  # noqa: F401
from .explore import ExplorationPoint, explore_configurations  # noqa: F401
from .optdb import OptimizationDatabase, default_database  # noqa: F401
