"""Device-specific mapping (paper Section V).

* :mod:`repro.mapping.heuristic` — **Algorithm 2**: occupancy-driven kernel
  configuration and 2-D tiling selection, minimising boundary-handling
  threads when border code was generated.
* :mod:`repro.mapping.explore` — exhaustive configuration exploration
  (Section V-D, Figure 4).
* :mod:`repro.mapping.optdb` — the optimization-selection database fed by
  micro-benchmarks (Section V-B): texture path, scratchpad staging, memory
  padding, constant-memory initialisation per device/backend — plus the
  persistent :class:`~repro.mapping.optdb.TunedDatabase` of measured
  per-kernel winners.
* :mod:`repro.mapping.tuner` — measurement-driven auto-tuning: budgeted
  adaptive search over the candidate space scored by real signals
  (docs/TUNING.md).
"""

from .heuristic import SelectedConfig, candidate_configurations, select_configuration  # noqa: F401
from .explore import ExplorationPoint, evaluate_block, explore_configurations  # noqa: F401
from .optdb import (  # noqa: F401
    OptimizationDatabase,
    TunedDatabase,
    TunedEntry,
    default_database,
    default_tuned_database,
    set_default_tuned_database,
)
from .tuner import TuneResult, tune_kernel  # noqa: F401
