"""Harris corner detector — a six-kernel pipeline on the simulated GPU.

Exercises multi-kernel composition with intermediate images:

1. Sobel derivatives ``Ix``, ``Iy`` (local operators),
2. structure-tensor products ``Ixx``, ``Iyy``, ``Ixy`` (point operators),
3. Gaussian smoothing of each product (local operators),
4. the response ``R = det(M) - k * trace(M)^2`` (a three-accessor point
   operator).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..dsl import (
    Accessor,
    Boundary,
    BoundaryCondition,
    Image,
    IterationSpace,
    Kernel,
    Mask,
    Uniform,
)
from .gaussian import gaussian_mask_2d
from .sobel import SOBEL_X, SOBEL_Y, SobelX, SobelY


class Multiply(Kernel):
    """Pointwise product of two images."""

    def __init__(self, iteration_space: IterationSpace, a: Accessor,
                 b: Accessor):
        super().__init__(iteration_space)
        self.a = a
        self.b = b
        self.add_accessor(a)
        self.add_accessor(b)

    def kernel(self):
        self.output(self.a(0, 0) * self.b(0, 0))


class HarrisResponse(Kernel):
    """``R = (Ixx*Iyy - Ixy^2) - k * (Ixx + Iyy)^2`` over the smoothed
    structure-tensor components."""

    def __init__(self, iteration_space: IterationSpace, ixx: Accessor,
                 iyy: Accessor, ixy: Accessor, k: float):
        super().__init__(iteration_space)
        self.ixx = ixx
        self.iyy = iyy
        self.ixy = ixy
        self.k = Uniform(float(k), float)
        self.add_accessor(ixx)
        self.add_accessor(iyy)
        self.add_accessor(ixy)

    def kernel(self):
        a = self.ixx(0, 0)
        b = self.iyy(0, 0)
        c = self.ixy(0, 0)
        det = a * b - c * c
        trace = a + b
        self.output(det - self.k * trace * trace)


class _Smooth(Kernel):
    """Gaussian smoothing of a tensor component."""

    def __init__(self, iteration_space: IterationSpace, inp: Accessor,
                 gmask: Mask, radius: int):
        super().__init__(iteration_space)
        self.inp = inp
        self.gmask = gmask
        self.radius = int(radius)
        self.add_accessor(inp)

    def kernel(self):
        s = 0.0
        for dy in range(-self.radius, self.radius + 1):
            for dx in range(-self.radius, self.radius + 1):
                s += self.gmask(dx, dy) * self.inp(dx, dy)
        self.output(s)


def harris_response(data: np.ndarray, k: float = 0.05,
                    window: int = 5,
                    boundary: Boundary = Boundary.MIRROR,
                    device: Union[None, str] = None,
                    backend: str = "cuda") -> np.ndarray:
    """Compute the Harris corner response map on the simulated GPU."""
    from ..runtime.compile import compile_kernel

    data = np.asarray(data, dtype=np.float32)
    h, w = data.shape

    def run(kernel):
        compile_kernel(kernel, backend=backend, device=device,
                       use_texture=False).execute()

    src = Image(w, h).set_data(data)

    # 1. derivatives
    ix_img, iy_img = Image(w, h), Image(w, h)
    run(SobelX(IterationSpace(ix_img),
               Accessor(BoundaryCondition(src, 3, 3, boundary)),
               Mask(3, 3).set(SOBEL_X)))
    run(SobelY(IterationSpace(iy_img),
               Accessor(BoundaryCondition(src, 3, 3, boundary)),
               Mask(3, 3).set(SOBEL_Y)))

    # 2. structure-tensor products
    ixx_img, iyy_img, ixy_img = Image(w, h), Image(w, h), Image(w, h)
    run(Multiply(IterationSpace(ixx_img), Accessor(ix_img),
                 Accessor(ix_img)))
    run(Multiply(IterationSpace(iyy_img), Accessor(iy_img),
                 Accessor(iy_img)))
    run(Multiply(IterationSpace(ixy_img), Accessor(ix_img),
                 Accessor(iy_img)))

    # 3. smooth each component
    gmask = gaussian_mask_2d(window)
    smoothed = []
    for img in (ixx_img, iyy_img, ixy_img):
        out = Image(w, h)
        run(_Smooth(IterationSpace(out),
                    Accessor(BoundaryCondition(img, window, window,
                                               boundary)),
                    gmask, window // 2))
        smoothed.append(out)

    # 4. response
    response = Image(w, h)
    run(HarrisResponse(IterationSpace(response),
                       Accessor(smoothed[0]), Accessor(smoothed[1]),
                       Accessor(smoothed[2]), k))
    return response.get_data()


def corner_peaks(response: np.ndarray, threshold_rel: float = 0.2,
                 min_distance: int = 3) -> np.ndarray:
    """Simple local-maximum corner extraction (host-side helper)."""
    from scipy.ndimage import maximum_filter

    threshold = threshold_rel * float(response.max())
    local_max = maximum_filter(response, size=2 * min_distance + 1)
    peaks = (response == local_max) & (response > threshold)
    ys, xs = np.nonzero(peaks)
    return np.stack([ys, xs], axis=1)
