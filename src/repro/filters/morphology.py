"""Grayscale morphology: erosion and dilation.

Built on the Section-VIII ``convolve()`` syntax with MIN/MAX reductions —
the neighbourhood-extremum operators used for vessel-width analysis and
background estimation in angiography.  A flat (box) structuring element of
odd size; the Mask object only defines the window (its coefficients are
ignored by the reduction), mirroring HIPAcc's Domain concept.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..dsl import (
    Accessor,
    Boundary,
    BoundaryCondition,
    Domain,
    Image,
    IterationSpace,
    Kernel,
    Reduce,
)
from ..dsl.domain import cross_domain, disk_domain
from ..errors import DslError


class Erode(Kernel):
    """Neighbourhood minimum over the structuring element (a Domain)."""

    def __init__(self, iteration_space: IterationSpace,
                 input_acc: Accessor, domain: Domain):
        super().__init__(iteration_space)
        self.input = input_acc
        self.domain = domain
        self.add_accessor(input_acc)

    def kernel(self):
        self.output(self.convolve(self.domain, Reduce.MIN,
                                  lambda: self.input(self.domain)))


class Dilate(Kernel):
    """Neighbourhood maximum over the structuring element (a Domain)."""

    def __init__(self, iteration_space: IterationSpace,
                 input_acc: Accessor, domain: Domain):
        super().__init__(iteration_space)
        self.input = input_acc
        self.domain = domain
        self.add_accessor(input_acc)

    def kernel(self):
        self.output(self.convolve(self.domain, Reduce.MAX,
                                  lambda: self.input(self.domain)))


def structuring_element(size: int, shape: str = "box") -> Domain:
    """Flat structuring element as a Domain: box, disk or cross."""
    if shape == "box":
        return Domain(size, size)
    if shape == "disk":
        return disk_domain(size)
    if shape == "cross":
        return cross_domain(size)
    raise DslError(f"unknown structuring-element shape {shape!r}")


def make_morphology(width: int, height: int, operation: str = "erode",
                    size: int = 3, shape: str = "box",
                    boundary: Boundary = Boundary.CLAMP,
                    data: Optional[np.ndarray] = None
                    ) -> Tuple[Kernel, Image, Image]:
    """Wire up an erosion/dilation; returns (kernel, in_image, out_image)."""
    img_in = Image(width, height, float)
    img_out = Image(width, height, float)
    if data is not None:
        img_in.set_data(data)
    acc = Accessor(BoundaryCondition(img_in, size, size, boundary))
    cls = Erode if operation == "erode" else Dilate
    kernel = cls(IterationSpace(img_out), acc,
                 structuring_element(size, shape))
    return kernel, img_in, img_out


def opening(data: np.ndarray, size: int = 3,
            boundary: Boundary = Boundary.CLAMP,
            device=None, backend: str = "cuda") -> np.ndarray:
    """Morphological opening (erode then dilate) on the simulated GPU —
    the classic background-estimation step before vessel subtraction."""
    from ..runtime.compile import compile_kernel

    data = np.asarray(data, dtype=np.float32)
    h, w = data.shape
    k1, _, mid = make_morphology(w, h, "erode", size, boundary=boundary,
                                 data=data)
    compile_kernel(k1, backend=backend, device=device).execute()
    k2, _, out = make_morphology(w, h, "dilate", size, boundary=boundary,
                                 data=mid.get_data())
    compile_kernel(k2, backend=backend, device=device).execute()
    return out.get_data()


def top_hat(data: np.ndarray, size: int = 7,
            boundary: Boundary = Boundary.CLAMP,
            device=None, backend: str = "cuda") -> np.ndarray:
    """White top-hat: image minus its opening — isolates thin bright
    structures (or, on inverted angiograms, thin dark vessels)."""
    data = np.asarray(data, dtype=np.float32)
    return data - opening(data, size, boundary, device, backend)
