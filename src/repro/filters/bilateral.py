"""Bilateral filter — the paper's running example.

Two kernel formulations:

* :class:`BilateralFilterFull` — Listing 1: closeness *and* similarity both
  computed per tap (three ``exp`` calls per neighbourhood pixel).  This is
  the "no mask" variant of the evaluation tables.
* :class:`BilateralFilter` — Listing 5: the closeness component comes from
  a precalculated :class:`~repro.dsl.Mask` in constant memory (one ``exp``
  per tap) — the "+Mask" variant and the form the paper recommends.

The window is (4*sigma_d+1)^2, i.e. taps run over [-2*sigma_d, +2*sigma_d]
as in Algorithm 1/Listing 1.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..dsl import (
    Accessor,
    Boundary,
    BoundaryCondition,
    Image,
    IterationSpace,
    Kernel,
    Mask,
)
from ..dsl.math import exp  # noqa: F401  (documents the intrinsic used)


def closeness_mask(sigma_d: float) -> Mask:
    """Precalculated closeness coefficients (Figure 1's ``c`` mask):
    ``exp(-1/2 * ((x,y)-(0,0))^2 / sigma_d^2)`` over the window."""
    half = 2 * int(sigma_d)
    ax = np.arange(-half, half + 1, dtype=np.float64)
    c_d = 1.0 / (2.0 * sigma_d * sigma_d)
    grid = np.exp(-c_d * ax[None, :] ** 2) * np.exp(-c_d * ax[:, None] ** 2)
    size = 2 * half + 1
    return Mask(size, size).set(grid.astype(np.float32))


class BilateralFilter(Kernel):
    """Bilateral filter with a precalculated closeness mask (Listing 5)."""

    def __init__(self, iteration_space: IterationSpace, input_acc: Accessor,
                 cmask: Mask, sigma_d: int, sigma_r: float):
        super().__init__(iteration_space)
        self.input = input_acc
        self.cmask = cmask
        self.sigma_d = int(sigma_d)
        self.sigma_r = float(sigma_r)
        self.add_accessor(input_acc)

    def kernel(self):
        c_r = 1.0 / (2.0 * self.sigma_r * self.sigma_r)
        d = 0.0
        p = 0.0
        for yf in range(-2 * self.sigma_d, 2 * self.sigma_d + 1):
            for xf in range(-2 * self.sigma_d, 2 * self.sigma_d + 1):
                diff = self.input(xf, yf) - self.input(0, 0)
                s = exp(-c_r * diff * diff)
                c = self.cmask(xf, yf)
                d += s * c
                p += s * c * self.input(xf, yf)
        self.output(p / d)


class BilateralFilterFull(Kernel):
    """Bilateral filter computing the closeness weight per tap (Listing 1)
    — the variant without a Mask, used as the no-mask baseline."""

    def __init__(self, iteration_space: IterationSpace, input_acc: Accessor,
                 sigma_d: int, sigma_r: float):
        super().__init__(iteration_space)
        self.input = input_acc
        self.sigma_d = int(sigma_d)
        self.sigma_r = float(sigma_r)
        self.add_accessor(input_acc)

    def kernel(self):
        c_r = 1.0 / (2.0 * self.sigma_r * self.sigma_r)
        c_d = 1.0 / (2.0 * self.sigma_d * self.sigma_d)
        d = 0.0
        p = 0.0
        for yf in range(-2 * self.sigma_d, 2 * self.sigma_d + 1):
            for xf in range(-2 * self.sigma_d, 2 * self.sigma_d + 1):
                diff = self.input(xf, yf) - self.input(0, 0)
                s = exp(-c_r * diff * diff)
                c = exp(-c_d * xf * xf) * exp(-c_d * yf * yf)
                d += s * c
                p += s * c * self.input(xf, yf)
        self.output(p / d)


def make_bilateral(width: int, height: int, sigma_d: int = 3,
                   sigma_r: float = 5.0,
                   boundary: Boundary = Boundary.CLAMP,
                   boundary_constant: float = 0.0,
                   use_mask: bool = True,
                   data: Optional[np.ndarray] = None
                   ) -> Tuple[Kernel, Image, Image]:
    """Wire up images/accessors for a bilateral filter (Listings 2/3).

    Returns ``(kernel, input_image, output_image)``.
    """
    img_in = Image(width, height, float)
    img_out = Image(width, height, float)
    if data is not None:
        img_in.set_data(data)
    window = 4 * int(sigma_d) + 1
    if boundary == Boundary.UNDEFINED:
        acc = Accessor(img_in)
    else:
        bc = BoundaryCondition(img_in, window, window, boundary,
                               constant=boundary_constant)
        acc = Accessor(bc)
    is_out = IterationSpace(img_out)
    if use_mask:
        kernel = BilateralFilter(is_out, acc, closeness_mask(sigma_d),
                                 sigma_d, sigma_r)
    else:
        kernel = BilateralFilterFull(is_out, acc, sigma_d, sigma_r)
    return kernel, img_in, img_out


def bilateral_reference(data: np.ndarray, sigma_d: int, sigma_r: float,
                        boundary: Boundary = Boundary.CLAMP,
                        boundary_constant: float = 0.0) -> np.ndarray:
    """Direct NumPy golden implementation (float32 accumulation to match
    the device code)."""
    from ..dsl.boundary import NUMPY_PAD_MODE

    half = 2 * int(sigma_d)
    data = np.asarray(data, dtype=np.float32)
    if boundary == Boundary.UNDEFINED:
        padded = np.pad(data, half, mode="edge")   # unspecified: use edge
    elif boundary == Boundary.CONSTANT:
        padded = np.pad(data, half, mode="constant",
                        constant_values=boundary_constant)
    else:
        padded = np.pad(data, half, mode=NUMPY_PAD_MODE[boundary])
    padded = padded.astype(np.float32)
    c_r = np.float32(1.0 / (2.0 * sigma_r * sigma_r))
    c_d = np.float32(1.0 / (2.0 * sigma_d * sigma_d))
    h, w = data.shape
    num = np.zeros((h, w), np.float32)
    den = np.zeros((h, w), np.float32)
    for yf in range(-half, half + 1):
        for xf in range(-half, half + 1):
            neigh = padded[half + yf:half + yf + h,
                           half + xf:half + xf + w]
            diff = neigh - data
            s = np.exp(-c_r * diff * diff).astype(np.float32)
            c = np.float32(np.exp(-c_d * xf * xf) * np.exp(-c_d * yf * yf))
            den += s * c
            num += s * c * neigh
    return num / den
