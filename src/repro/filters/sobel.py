"""Sobel derivative filters and gradient magnitude.

The Sobel filter shares its implementation structure with the Gaussian in
the paper's OpenCV comparison ("the Sobel filter uses the same
implementation and has the same performance").  :class:`GradientMagnitude`
is a two-input point operator combining the derivative images.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..dsl import (
    Accessor,
    Boundary,
    BoundaryCondition,
    Image,
    IterationSpace,
    Kernel,
    Mask,
)
from ..dsl.math import sqrt  # noqa: F401

SOBEL_X = np.array([[-1, 0, 1],
                    [-2, 0, 2],
                    [-1, 0, 1]], dtype=np.float32)
SOBEL_Y = SOBEL_X.T.copy()


class SobelX(Kernel):
    """Horizontal Sobel derivative (3x3 mask convolution)."""

    def __init__(self, iteration_space: IterationSpace,
                 input_acc: Accessor, mask: Mask):
        super().__init__(iteration_space)
        self.input = input_acc
        self.smask = mask
        self.add_accessor(input_acc)

    def kernel(self):
        s = 0.0
        for yf in range(-1, 2):
            for xf in range(-1, 2):
                s += self.smask(xf, yf) * self.input(xf, yf)
        self.output(s)


class SobelY(SobelX):
    """Vertical Sobel derivative — same body, transposed mask."""


class GradientMagnitude(Kernel):
    """Point operator: ``sqrt(gx^2 + gy^2)`` over two derivative images."""

    def __init__(self, iteration_space: IterationSpace, gx: Accessor,
                 gy: Accessor):
        super().__init__(iteration_space)
        self.gx = gx
        self.gy = gy
        self.add_accessor(gx)
        self.add_accessor(gy)

    def kernel(self):
        dx = self.gx(0, 0)
        dy = self.gy(0, 0)
        self.output(sqrt(dx * dx + dy * dy))


def make_sobel(width: int, height: int, axis: str = "x",
               boundary: Boundary = Boundary.CLAMP,
               boundary_constant: float = 0.0,
               data: Optional[np.ndarray] = None
               ) -> Tuple[Kernel, Image, Image]:
    """Wire up a Sobel derivative; returns (kernel, in_image, out_image)."""
    img_in = Image(width, height, float)
    img_out = Image(width, height, float)
    if data is not None:
        img_in.set_data(data)
    if boundary == Boundary.UNDEFINED:
        acc = Accessor(img_in)
    else:
        bc = BoundaryCondition(img_in, 3, 3, boundary,
                               constant=boundary_constant)
        acc = Accessor(bc)
    coeffs = SOBEL_X if axis == "x" else SOBEL_Y
    mask = Mask(3, 3).set(coeffs)
    cls = SobelX if axis == "x" else SobelY
    kernel = cls(IterationSpace(img_out), acc, mask)
    return kernel, img_in, img_out


def sobel_reference(data: np.ndarray, axis: str = "x",
                    boundary: Boundary = Boundary.CLAMP) -> np.ndarray:
    """Golden Sobel via explicit padded correlation."""
    from ..dsl.boundary import NUMPY_PAD_MODE

    data = np.asarray(data, dtype=np.float32)
    mode = NUMPY_PAD_MODE.get(boundary, "edge")
    padded = np.pad(data, 1, mode=mode)
    coeffs = SOBEL_X if axis == "x" else SOBEL_Y
    h, w = data.shape
    out = np.zeros((h, w), np.float32)
    for yf in range(3):
        for xf in range(3):
            out += coeffs[yf, xf] * padded[yf:yf + h, xf:xf + w]
    return out
