"""Gaussian blur — the kernel of Tables VIII/IX.

* :class:`GaussianFilter` — 2-D convolution with a constant-memory mask,
  the form hipacc-py generates for the comparison against OpenCV;
* :class:`SeparableGaussianRow` / :class:`SeparableGaussianCol` — the
  row/column separable formulation OpenCV's GPU module implements
  ("OpenCV added low-level CUDA implementations for row-based and
  column-based (separable) kernels like Gaussian and Sobel filters").
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..dsl import (
    Accessor,
    Boundary,
    BoundaryCondition,
    Image,
    IterationSpace,
    Kernel,
    Mask,
)
from ..errors import DslError


def gaussian_coefficients(size: int,
                          sigma: Optional[float] = None) -> np.ndarray:
    """Normalised 1-D Gaussian coefficients (OpenCV's sigma default)."""
    if size < 1 or size % 2 == 0:
        raise DslError(f"gaussian size must be odd, got {size}")
    if sigma is None:
        # OpenCV's default: sigma = 0.3*((ksize-1)*0.5 - 1) + 0.8
        sigma = 0.3 * ((size - 1) * 0.5 - 1) + 0.8
    half = size // 2
    ax = np.arange(-half, half + 1, dtype=np.float64)
    g = np.exp(-0.5 * (ax / sigma) ** 2)
    g /= g.sum()
    return g.astype(np.float32)


def gaussian_mask_2d(size: int, sigma: Optional[float] = None) -> Mask:
    g1 = gaussian_coefficients(size, sigma).astype(np.float64)
    g2 = np.outer(g1, g1)
    return Mask(size, size).set(g2.astype(np.float32))


class GaussianFilter(Kernel):
    """2-D Gaussian convolution with a precalculated mask."""

    def __init__(self, iteration_space: IterationSpace, input_acc: Accessor,
                 mask: Mask, radius: int):
        super().__init__(iteration_space)
        self.input = input_acc
        self.gmask = mask
        self.radius = int(radius)
        self.add_accessor(input_acc)

    def kernel(self):
        s = 0.0
        for yf in range(-self.radius, self.radius + 1):
            for xf in range(-self.radius, self.radius + 1):
                s += self.gmask(xf, yf) * self.input(xf, yf)
        self.output(s)


class SeparableGaussianRow(Kernel):
    """Horizontal pass of the separable Gaussian."""

    def __init__(self, iteration_space: IterationSpace, input_acc: Accessor,
                 mask: Mask, radius: int):
        super().__init__(iteration_space)
        self.input = input_acc
        self.gmask = mask
        self.radius = int(radius)
        self.add_accessor(input_acc)

    def kernel(self):
        s = 0.0
        for xf in range(-self.radius, self.radius + 1):
            s += self.gmask(xf, 0) * self.input(xf, 0)
        self.output(s)


class SeparableGaussianCol(Kernel):
    """Vertical pass of the separable Gaussian."""

    def __init__(self, iteration_space: IterationSpace, input_acc: Accessor,
                 mask: Mask, radius: int):
        super().__init__(iteration_space)
        self.input = input_acc
        self.gmask = mask
        self.radius = int(radius)
        self.add_accessor(input_acc)

    def kernel(self):
        s = 0.0
        for yf in range(-self.radius, self.radius + 1):
            s += self.gmask(0, yf) * self.input(0, yf)
        self.output(s)


def row_mask(size: int, sigma: Optional[float] = None) -> Mask:
    g = gaussian_coefficients(size, sigma)
    return Mask(size, 1).set(g.reshape(1, size))


def col_mask(size: int, sigma: Optional[float] = None) -> Mask:
    g = gaussian_coefficients(size, sigma)
    return Mask(1, size).set(g.reshape(size, 1))


def make_gaussian(width: int, height: int, size: int = 3,
                  sigma: Optional[float] = None,
                  boundary: Boundary = Boundary.CLAMP,
                  boundary_constant: float = 0.0,
                  data: Optional[np.ndarray] = None
                  ) -> Tuple[GaussianFilter, Image, Image]:
    """Wire up a 2-D Gaussian; returns (kernel, in_image, out_image)."""
    img_in = Image(width, height, float)
    img_out = Image(width, height, float)
    if data is not None:
        img_in.set_data(data)
    if boundary == Boundary.UNDEFINED:
        acc = Accessor(img_in)
    else:
        bc = BoundaryCondition(img_in, size, size, boundary,
                               constant=boundary_constant)
        acc = Accessor(bc)
    kernel = GaussianFilter(IterationSpace(img_out), acc,
                            gaussian_mask_2d(size, sigma), size // 2)
    return kernel, img_in, img_out


def gaussian_reference(data: np.ndarray, size: int,
                       sigma: Optional[float] = None,
                       boundary: Boundary = Boundary.CLAMP,
                       boundary_constant: float = 0.0) -> np.ndarray:
    """Golden 2-D Gaussian via explicit padding + correlation."""
    from ..dsl.boundary import NUMPY_PAD_MODE

    g1 = gaussian_coefficients(size, sigma).astype(np.float64)
    g2 = np.outer(g1, g1).astype(np.float32)
    half = size // 2
    data = np.asarray(data, dtype=np.float32)
    if boundary == Boundary.CONSTANT:
        padded = np.pad(data, half, mode="constant",
                        constant_values=boundary_constant)
    elif boundary == Boundary.UNDEFINED:
        padded = np.pad(data, half, mode="edge")
    else:
        padded = np.pad(data, half, mode=NUMPY_PAD_MODE[boundary])
    h, w = data.shape
    out = np.zeros((h, w), np.float32)
    for yf in range(size):
        for xf in range(size):
            out += g2[yf, xf] * padded[yf:yf + h, xf:xf + w]
    return out
