"""Laplacian edge detector (3x3), a further local operator example."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..dsl import (
    Accessor,
    Boundary,
    BoundaryCondition,
    Image,
    IterationSpace,
    Kernel,
    Mask,
)

LAPLACIAN_4 = np.array([[0, 1, 0],
                        [1, -4, 1],
                        [0, 1, 0]], dtype=np.float32)
LAPLACIAN_8 = np.array([[1, 1, 1],
                        [1, -8, 1],
                        [1, 1, 1]], dtype=np.float32)


class LaplacianFilter(Kernel):
    """3x3 Laplacian convolution with a constant-memory mask."""

    def __init__(self, iteration_space: IterationSpace,
                 input_acc: Accessor, mask: Mask):
        super().__init__(iteration_space)
        self.input = input_acc
        self.lmask = mask
        self.add_accessor(input_acc)

    def kernel(self):
        s = 0.0
        for yf in range(-1, 2):
            for xf in range(-1, 2):
                s += self.lmask(xf, yf) * self.input(xf, yf)
        self.output(s)


def make_laplacian(width: int, height: int, connectivity: int = 4,
                   boundary: Boundary = Boundary.CLAMP,
                   data: Optional[np.ndarray] = None
                   ) -> Tuple[LaplacianFilter, Image, Image]:
    """Wire up a Laplacian; *connectivity* is 4 or 8."""
    img_in = Image(width, height, float)
    img_out = Image(width, height, float)
    if data is not None:
        img_in.set_data(data)
    if boundary == Boundary.UNDEFINED:
        acc = Accessor(img_in)
    else:
        bc = BoundaryCondition(img_in, 3, 3, boundary)
        acc = Accessor(bc)
    coeffs = LAPLACIAN_4 if connectivity == 4 else LAPLACIAN_8
    kernel = LaplacianFilter(IterationSpace(img_out), acc,
                             Mask(3, 3).set(coeffs))
    return kernel, img_in, img_out
