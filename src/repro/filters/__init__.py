"""Ready-made medical-imaging operators built on the DSL.

* :mod:`repro.filters.bilateral` — the paper's running example (Listings
  1/2/5), in both the mask-accelerated and the fully-computed form;
* :mod:`repro.filters.gaussian` — Gaussian blur (Tables VIII/IX), plus the
  separable row/column form the OpenCV baseline uses;
* :mod:`repro.filters.sobel` — Sobel derivatives and gradient magnitude;
* :mod:`repro.filters.laplacian` — Laplacian edge detector;
* :mod:`repro.filters.median` — 3x3 median via a min/max sorting network;
* :mod:`repro.filters.point_ops` — point operators (the predecessor
  paper's domain [4]);
* :mod:`repro.filters.multiresolution` — the multiresolution filtering
  pipeline the paper's Section III-A motivates mirroring for.
"""

from .bilateral import (  # noqa: F401
    BilateralFilter,
    BilateralFilterFull,
    closeness_mask,
    make_bilateral,
)
from .gaussian import (  # noqa: F401
    GaussianFilter,
    SeparableGaussianCol,
    SeparableGaussianRow,
    gaussian_coefficients,
    make_gaussian,
)
from .sobel import SobelX, SobelY, GradientMagnitude, make_sobel  # noqa: F401
from .laplacian import LaplacianFilter, make_laplacian  # noqa: F401
from .median import Median3x3, make_median  # noqa: F401
from .point_ops import (  # noqa: F401
    AbsDiff,
    AddConstant,
    GammaCorrection,
    LinearBlend,
    Scale,
    Threshold,
)
from .harris import (  # noqa: F401
    HarrisResponse,
    Multiply,
    corner_peaks,
    harris_response,
)
from .diffusion import (  # noqa: F401
    PeronaMalik,
    anisotropic_diffusion,
    make_diffusion_step,
)
from .morphology import (  # noqa: F401
    Dilate,
    Erode,
    make_morphology,
    opening,
    structuring_element,
    top_hat,
)
from .multiresolution import multiresolution_filter  # noqa: F401
