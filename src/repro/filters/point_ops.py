"""Point operators — the domain of the predecessor paper [4].

"Point operators are applied to the pixels of the image and solely the
pixel the point operator is applied to contributes to the operation."
These exercise the compiler's point-operator path (no boundary handling,
no window) and provide building blocks for the multiresolution example.
"""

from __future__ import annotations

from ..dsl import Accessor, IterationSpace, Kernel
from ..dsl.math import pow as _pow  # noqa: F401


class AddConstant(Kernel):
    """``out = in + value`` — the paper's point-operator example."""

    def __init__(self, iteration_space: IterationSpace, input_acc: Accessor,
                 value: float):
        super().__init__(iteration_space)
        self.input = input_acc
        self.value = float(value)
        self.add_accessor(input_acc)

    def kernel(self):
        self.output(self.input(0, 0) + self.value)


class Scale(Kernel):
    """``out = in * factor + offset``."""

    def __init__(self, iteration_space: IterationSpace, input_acc: Accessor,
                 factor: float, offset: float = 0.0):
        super().__init__(iteration_space)
        self.input = input_acc
        self.factor = float(factor)
        self.offset = float(offset)
        self.add_accessor(input_acc)

    def kernel(self):
        self.output(self.input(0, 0) * self.factor + self.offset)


class AbsDiff(Kernel):
    """``out = |a - b|`` — digital subtraction angiography's core op."""

    def __init__(self, iteration_space: IterationSpace, a: Accessor,
                 b: Accessor):
        super().__init__(iteration_space)
        self.a = a
        self.b = b
        self.add_accessor(a)
        self.add_accessor(b)

    def kernel(self):
        self.output(fabs(self.a(0, 0) - self.b(0, 0)))


class Threshold(Kernel):
    """Binary threshold: ``out = in > t ? high : low``."""

    def __init__(self, iteration_space: IterationSpace, input_acc: Accessor,
                 threshold: float, low: float = 0.0, high: float = 1.0):
        super().__init__(iteration_space)
        self.input = input_acc
        self.threshold = float(threshold)
        self.low = float(low)
        self.high = float(high)
        self.add_accessor(input_acc)

    def kernel(self):
        v = self.input(0, 0)
        self.output(self.high if v > self.threshold else self.low)


class LinearBlend(Kernel):
    """``out = alpha*a + (1-alpha)*b``."""

    def __init__(self, iteration_space: IterationSpace, a: Accessor,
                 b: Accessor, alpha: float):
        super().__init__(iteration_space)
        self.a = a
        self.b = b
        self.alpha = float(alpha)
        self.add_accessor(a)
        self.add_accessor(b)

    def kernel(self):
        self.output(self.alpha * self.a(0, 0)
                    + (1.0 - self.alpha) * self.b(0, 0))


class GammaCorrection(Kernel):
    """``out = in ** gamma`` (display linearisation)."""

    def __init__(self, iteration_space: IterationSpace, input_acc: Accessor,
                 gamma: float):
        super().__init__(iteration_space)
        self.input = input_acc
        self.gamma = float(gamma)
        self.add_accessor(input_acc)

    def kernel(self):
        self.output(pow(self.input(0, 0), self.gamma))


# name used inside AbsDiff.kernel; resolved by the compiler via the
# intrinsic registry, provided here so the module is importable standalone
from ..dsl.math import fabs  # noqa: E402,F401
from ..dsl.math import pow  # noqa: E402,F401,A001
