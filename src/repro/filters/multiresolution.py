"""Multiresolution filtering (Kunz et al. [7] — the paper's motivation for
mirror boundary handling).

"the image gets upsampled multiple times and at the border occur large
unnatural-looking artifacts when the border pixel gets replicated
repeatedly.  In contrast, using mirroring leads to natural looking images."

The pipeline builds a Gaussian pyramid with DSL-compiled blur kernels
running on the simulated GPU, applies a gain to each detail (Laplacian)
level, and recollapses.  Down/upsampling is host-side (as the CPU would do
between kernel launches); every smoothing kernel uses the configured
boundary mode — switching CLAMP vs MIRROR demonstrates the border-artifact
effect the paper describes.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from ..dsl import (
    Boundary,
    BoundaryCondition,
    Image,
    IterationSpace,
    Kernel,
)
from ..dsl.interpolate import InterpolatedAccessor, Interpolation
from ..hwmodel.device import DeviceSpec
from .gaussian import make_gaussian


class _Resample(Kernel):
    """Identity kernel over a resampling accessor — device-side
    down/upsampling (HIPAcc pyramids use exactly this pattern)."""

    def __init__(self, iteration_space, inp):
        super().__init__(iteration_space)
        self.inp = inp
        self.add_accessor(inp)

    def kernel(self):
        self.output(self.inp(0, 0))


def _device_resample(data: np.ndarray, out_w: int, out_h: int,
                     boundary: Boundary, device, backend: str,
                     interpolation=Interpolation.LINEAR,
                     cache=None) -> np.ndarray:
    """Resample on the simulated GPU through an InterpolatedAccessor."""
    from ..runtime.compile import compile_kernel

    h, w = data.shape
    img_in = Image(w, h).set_data(data)
    img_out = Image(out_w, out_h)
    bc = BoundaryCondition(img_in, 3, 3, boundary)
    acc = InterpolatedAccessor(bc, out_w, out_h, interpolation)
    kernel = _Resample(IterationSpace(img_out), acc)
    compile_kernel(kernel, backend=backend, device=device,
                   use_texture=False, cache=cache).execute()
    return img_out.get_data()


def _downsample(data: np.ndarray) -> np.ndarray:
    return data[::2, ::2]


def _upsample(data: np.ndarray, shape) -> np.ndarray:
    h, w = shape
    up = np.repeat(np.repeat(data, 2, axis=0), 2, axis=1)
    return up[:h, :w]


def _blur(data: np.ndarray, boundary: Boundary, device, backend: str,
          size: int = 5, cache=None) -> np.ndarray:
    kernel, img_in, img_out = make_gaussian(
        data.shape[1], data.shape[0], size=size, boundary=boundary,
        data=data)
    from ..runtime.compile import compile_kernel

    compiled = compile_kernel(kernel, backend=backend, device=device,
                              cache=cache)
    compiled.execute()
    return img_out.get_data()


def multiresolution_filter(data: np.ndarray,
                           levels: int = 3,
                           gains: Optional[Sequence[float]] = None,
                           boundary: Boundary = Boundary.MIRROR,
                           device: Union[None, str, DeviceSpec] = None,
                           backend: str = "cuda",
                           device_resample: bool = False,
                           cache=None) -> np.ndarray:
    """Multi-scale detail enhancement.

    Decomposes *data* into *levels* Laplacian levels (each detail level =
    image minus its blur), scales each detail by ``gains[i]`` (default 1.0 =
    identity), and reconstructs.  All smoothing runs through compiled DSL
    kernels on the simulated *device*.  With *device_resample*, the
    down/upsampling also runs on the device through bilinear
    InterpolatedAccessors (HIPAcc's pyramid pattern) instead of host-side
    decimation/replication.

    Every per-level blur/resample compile goes through one shared
    compilation cache, so the synthesis pass reuses the analysis pass's
    artifacts (same blur geometry per level).  *cache* follows the
    :func:`~repro.runtime.compile.compile_kernel` convention — a
    :class:`~repro.cache.CompilationCache` instance to share across
    calls, ``True`` for the process default, ``False`` to disable — with
    the default ``None`` meaning a fresh cache private to this call.
    """
    from ..cache import CompilationCache, get_default_cache

    data = np.asarray(data, dtype=np.float32)
    if levels < 1:
        raise ValueError("levels must be >= 1")
    if gains is None:
        gains = [1.0] * levels
    if len(gains) != levels:
        raise ValueError(f"expected {levels} gains, got {len(gains)}")
    if cache is None:
        cache = CompilationCache()
    elif cache is True:
        cache = get_default_cache()
    elif cache is False:
        cache = None

    # analysis: Gaussian pyramid + detail levels
    current = data
    details: List[np.ndarray] = []
    bases: List[np.ndarray] = []
    for _ in range(levels):
        blurred = _blur(current, boundary, device, backend, cache=cache)
        details.append(current - blurred)
        bases.append(current)
        if device_resample:
            h, w = blurred.shape
            current = _device_resample(blurred, max(1, w // 2),
                                       max(1, h // 2), boundary, device,
                                       backend, cache=cache)
        else:
            current = _downsample(blurred)

    # synthesis: upsample, re-smooth (where mirror vs clamp matters most),
    # and add the gained detail back in
    result = current
    for level in range(levels - 1, -1, -1):
        if device_resample:
            th, tw = bases[level].shape
            up = _device_resample(result, tw, th, boundary, device,
                                  backend, cache=cache)
        else:
            up = _upsample(result, bases[level].shape)
        up = _blur(up, boundary, device, backend, cache=cache)
        result = up + np.float32(gains[level]) * details[level]
    return result
