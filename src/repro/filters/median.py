"""3x3 median filter via a min/max exchange network.

Medians are the classic noise-suppression operator in X-ray imaging.  The
kernel body is straight-line code over nine locals using the ``min``/``max``
intrinsics — a 19-exchange selection network that leaves the median in the
middle element.  This exercises a DSL corner the convolutions do not:
many locals, deep dataflow, no loops.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..dsl import (
    Accessor,
    Boundary,
    BoundaryCondition,
    Image,
    IterationSpace,
    Kernel,
)
from ..dsl.math import max as fmax  # noqa: F401
from ..dsl.math import min as fmin  # noqa: F401


class Median3x3(Kernel):
    """Median of the 3x3 neighbourhood (Paeth's 19-comparison network)."""

    def __init__(self, iteration_space: IterationSpace,
                 input_acc: Accessor):
        super().__init__(iteration_space)
        self.input = input_acc
        self.add_accessor(input_acc)

    def kernel(self):
        v0 = self.input(-1, -1)
        v1 = self.input(0, -1)
        v2 = self.input(1, -1)
        v3 = self.input(-1, 0)
        v4 = self.input(0, 0)
        v5 = self.input(1, 0)
        v6 = self.input(-1, 1)
        v7 = self.input(0, 1)
        v8 = self.input(1, 1)

        # exchange network (exhaustively verified): v4 ends as the median
        t = min(v1, v2)
        v2 = max(v1, v2)
        v1 = t
        t = min(v4, v5)
        v5 = max(v4, v5)
        v4 = t
        t = min(v7, v8)
        v8 = max(v7, v8)
        v7 = t
        t = min(v0, v1)
        v1 = max(v0, v1)
        v0 = t
        t = min(v3, v4)
        v4 = max(v3, v4)
        v3 = t
        t = min(v6, v7)
        v7 = max(v6, v7)
        v6 = t
        t = min(v1, v2)
        v2 = max(v1, v2)
        v1 = t
        t = min(v4, v5)
        v5 = max(v4, v5)
        v4 = t
        t = min(v7, v8)
        v8 = max(v7, v8)
        v7 = t
        v3 = max(v0, v3)
        v5 = min(v5, v8)
        t = min(v4, v7)
        v7 = max(v4, v7)
        v4 = t
        v6 = max(v3, v6)
        v4 = max(v1, v4)
        v2 = min(v2, v5)
        v4 = min(v4, v7)
        t = min(v4, v2)
        v2 = max(v4, v2)
        v4 = t
        v4 = max(v6, v4)
        v4 = min(v4, v2)
        self.output(v4)


def make_median(width: int, height: int,
                boundary: Boundary = Boundary.CLAMP,
                data: Optional[np.ndarray] = None
                ) -> Tuple[Median3x3, Image, Image]:
    """Wire up a 3x3 median; returns (kernel, in_image, out_image)."""
    img_in = Image(width, height, float)
    img_out = Image(width, height, float)
    if data is not None:
        img_in.set_data(data)
    if boundary == Boundary.UNDEFINED:
        acc = Accessor(img_in)
    else:
        acc = Accessor(BoundaryCondition(img_in, 3, 3, boundary))
    return Median3x3(IterationSpace(img_out), acc), img_in, img_out
