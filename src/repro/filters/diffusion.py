"""Perona-Malik anisotropic diffusion — iterative edge-preserving
smoothing, a staple of medical image enhancement.

Each iteration is one local operator: the four-neighbour gradient drives
a conductance ``g(x) = exp(-(x/kappa)^2)`` so diffusion stops at edges.
``kappa`` and the step size ``lam`` are :class:`~repro.dsl.Uniform`
parameters, so the kernel is **compiled once** and re-launched per
iteration with runtime arguments — the exact use case HIPAcc's
kernel-argument machinery exists for.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from ..dsl import (
    Accessor,
    Boundary,
    BoundaryCondition,
    Image,
    IterationSpace,
    Kernel,
    Uniform,
)
from ..dsl.math import exp  # noqa: F401 (kernel intrinsic)


class PeronaMalik(Kernel):
    """One explicit diffusion step with exponential conductance."""

    def __init__(self, iteration_space: IterationSpace,
                 input_acc: Accessor, kappa: float, lam: float):
        super().__init__(iteration_space)
        self.input = input_acc
        self.kappa = Uniform(float(kappa), float)
        self.lam = Uniform(float(lam), float)
        self.add_accessor(input_acc)

    def kernel(self):
        c = self.input(0, 0)
        dn = self.input(0, -1) - c
        ds = self.input(0, 1) - c
        de = self.input(1, 0) - c
        dw = self.input(-1, 0) - c
        inv_k2 = 1.0 / (self.kappa * self.kappa)
        gn = exp(-dn * dn * inv_k2)
        gs = exp(-ds * ds * inv_k2)
        ge = exp(-de * de * inv_k2)
        gw = exp(-dw * dw * inv_k2)
        self.output(c + self.lam * (gn * dn + gs * ds + ge * de
                                    + gw * dw))


def make_diffusion_step(width: int, height: int, kappa: float = 0.1,
                        lam: float = 0.2,
                        boundary: Boundary = Boundary.MIRROR,
                        data: Optional[np.ndarray] = None
                        ) -> Tuple[PeronaMalik, Image, Image]:
    """Wire up one diffusion step; returns (kernel, in_image, out_image)."""
    img_in = Image(width, height, float)
    img_out = Image(width, height, float)
    if data is not None:
        img_in.set_data(data)
    acc = Accessor(BoundaryCondition(img_in, 3, 3, boundary))
    kernel = PeronaMalik(IterationSpace(img_out), acc, kappa, lam)
    return kernel, img_in, img_out


def anisotropic_diffusion(data: np.ndarray, iterations: int = 10,
                          kappa: float = 0.1, lam: float = 0.2,
                          boundary: Boundary = Boundary.MIRROR,
                          device: Union[None, str] = None,
                          backend: str = "cuda") -> np.ndarray:
    """Run *iterations* diffusion steps on the simulated GPU.

    The kernel is compiled once; each step re-launches it after updating
    the input image (ping-pong through host memory, as the C++ framework
    would ping-pong device buffers).
    """
    from ..runtime.compile import compile_kernel

    data = np.asarray(data, dtype=np.float32)
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    if not (0.0 < lam <= 0.25):
        raise ValueError("stability requires 0 < lam <= 0.25")
    h, w = data.shape
    kernel, img_in, img_out = make_diffusion_step(
        w, h, kappa, lam, boundary, data)
    compiled = compile_kernel(kernel, backend=backend, device=device,
                              use_texture=False)
    for _ in range(iterations):
        compiled.execute()
        img_in.set_data(img_out.get_data())
    return img_out.get_data()


def diffusion_reference(data: np.ndarray, iterations: int, kappa: float,
                        lam: float,
                        boundary: Boundary = Boundary.MIRROR
                        ) -> np.ndarray:
    """Golden NumPy implementation (float32, same boundary semantics)."""
    from ..dsl.boundary import NUMPY_PAD_MODE

    current = np.asarray(data, dtype=np.float32)
    k2_inv = np.float32(1.0 / (kappa * kappa))
    lam32 = np.float32(lam)
    mode = NUMPY_PAD_MODE[boundary]
    for _ in range(iterations):
        padded = np.pad(current, 1, mode=mode)
        c = current
        deltas = [
            padded[0:-2, 1:-1] - c,    # north
            padded[2:, 1:-1] - c,      # south
            padded[1:-1, 2:] - c,      # east
            padded[1:-1, 0:-2] - c,    # west
        ]
        flux = np.zeros_like(c)
        for d in deltas:
            flux += np.exp(-d * d * k2_inv).astype(np.float32) * d
        current = c + lam32 * flux
    return current
