"""Control-flow graph over the kernel IR.

The paper performs "a read/write analysis of the kernel method.  Therefore, a
control-flow graph (CFG) of the instructions in the kernel method is created
and traversed afterwards" (Section IV-A).  We reproduce that structure: basic
blocks of straight-line statements connected by branch/loop edges, plus a
traversal used by :mod:`repro.ir.analysis` to collect access information for
each Image/Accessor object.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

from .nodes import ForRange, If, Stmt


@dataclasses.dataclass
class BasicBlock:
    """A maximal straight-line sequence of non-branching statements."""

    index: int
    stmts: List[Stmt] = dataclasses.field(default_factory=list)
    successors: List[int] = dataclasses.field(default_factory=list)
    label: str = ""

    def add_successor(self, idx: int) -> None:
        if idx not in self.successors:
            self.successors.append(idx)


class CFG:
    """Control-flow graph with a single entry and single exit block."""

    def __init__(self) -> None:
        self.blocks: Dict[int, BasicBlock] = {}
        self.entry: int = 0
        self.exit: int = 0

    def new_block(self, label: str = "") -> BasicBlock:
        idx = len(self.blocks)
        block = BasicBlock(index=idx, label=label)
        self.blocks[idx] = block
        return block

    def predecessors(self, idx: int) -> List[int]:
        return [b.index for b in self.blocks.values()
                if idx in b.successors]

    def reverse_postorder(self) -> List[int]:
        """Block indices in reverse postorder (forward-dataflow order)."""
        seen = set()
        order: List[int] = []

        def dfs(i: int) -> None:
            seen.add(i)
            for s in self.blocks[i].successors:
                if s not in seen:
                    dfs(s)
            order.append(i)

        dfs(self.entry)
        order.reverse()
        return order

    def reachable(self) -> set:
        return set(self.reverse_postorder())

    def dump(self) -> str:
        """Deterministic text rendering for golden tests and debugging.

        One line per block, in index order::

            B0[entry] stmts=1 -> B1, B3

        Statement counts and successor order are exactly as built, so a
        change in construction order shows up as a golden diff.
        """
        lines = []
        for idx in sorted(self.blocks):
            b = self.blocks[idx]
            label = f"[{b.label}]" if b.label else ""
            succ = ", ".join(f"B{s}" for s in b.successors)
            arrow = f" -> {succ}" if succ else ""
            lines.append(f"B{idx}{label} stmts={len(b.stmts)}{arrow}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.blocks)


def build_cfg(body: Sequence[Stmt]) -> CFG:
    """Build a CFG for *body*.

    ``If`` creates a diamond; ``ForRange`` creates header -> body -> header
    back edge plus header -> after edge.  Loop bounds live in the header
    block (they are evaluated per iteration in C terms).
    """
    cfg = CFG()
    entry = cfg.new_block("entry")
    cfg.entry = entry.index
    current = _build_seq(cfg, entry, body)
    exit_block = cfg.new_block("exit")
    current.add_successor(exit_block.index)
    cfg.exit = exit_block.index
    return cfg


def _build_seq(cfg: CFG, current: BasicBlock,
               body: Sequence[Stmt]) -> BasicBlock:
    for s in body:
        if isinstance(s, If):
            cond_block = current
            cond_block.stmts.append(s)  # condition evaluated here
            then_entry = cfg.new_block("then")
            cond_block.add_successor(then_entry.index)
            then_exit = _build_seq(cfg, then_entry, s.then_body)
            join = cfg.new_block("join")
            then_exit.add_successor(join.index)
            if s.else_body:
                else_entry = cfg.new_block("else")
                cond_block.add_successor(else_entry.index)
                else_exit = _build_seq(cfg, else_entry, s.else_body)
                else_exit.add_successor(join.index)
            else:
                cond_block.add_successor(join.index)
            current = join
        elif isinstance(s, ForRange):
            header = cfg.new_block("loop-header")
            header.stmts.append(s)  # bounds evaluated here
            current.add_successor(header.index)
            body_entry = cfg.new_block("loop-body")
            header.add_successor(body_entry.index)
            body_exit = _build_seq(cfg, body_entry, s.body)
            body_exit.add_successor(header.index)  # back edge
            after = cfg.new_block("loop-exit")
            header.add_successor(after.index)
            current = after
        else:
            current.stmts.append(s)
    return current
