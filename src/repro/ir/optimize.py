"""Redundancy-elimination passes: CSE and loop-invariant code motion.

The code HIPAcc prints contains textual redundancy (e.g. three texture
fetches per bilateral tap, the centre-pixel read inside the loop); the
*device* compiler (nvcc / the OpenCL runtime) eliminates it.  These passes
model that step — the resource estimator and timing model run them before
counting instructions, and they are also available as explicit compiler
options for emitting pre-optimised source.

Everything in the kernel IR is pure (input images are read-only, the only
side effect is the final output write), so any repeated expression may be
computed once:

* :func:`eliminate_common_subexpressions` — local value numbering over
  straight-line statement runs; repeated non-trivial subexpressions
  (accessor reads, intrinsic calls, compound arithmetic) become temps.
* :func:`hoist_loop_invariants` — moves maximal loop-invariant
  subexpressions out of ``ForRange`` bodies (innermost first), e.g. the
  ``exp(-c_d*yf*yf)`` factor leaving the ``xf`` loop, the centre read
  leaving both loops.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Set, Tuple

from .nodes import (
    AccessorRead,
    Assign,
    BinOp,
    Call,
    Cast,
    Expr,
    ForRange,
    If,
    KernelIR,
    MaskRead,
    OutputWrite,
    Select,
    Stmt,
    UnOp,
    VarDecl,
    VarRef,
    is_const,
)
from .printer import format_expr
from .visitors import walk_exprs


def _key(e: Expr) -> str:
    """Structural identity of an expression (names included)."""
    return format_expr(e)


def _deps(e: Expr) -> Set[str]:
    return {sub.name for sub in walk_exprs(e) if isinstance(sub, VarRef)}


def _is_constexpr(e: Expr) -> bool:
    """Every leaf is a literal — folding, not sharing, handles these."""
    return all(is_const(sub) or isinstance(sub, (BinOp, UnOp, Cast,
                                                 Select))
               for sub in walk_exprs(e))


def _is_candidate(e: Expr) -> bool:
    """Worth sharing: reads, calls, and non-trivial arithmetic."""
    if isinstance(e, (AccessorRead, MaskRead)):
        return True
    if isinstance(e, Call):
        return not _is_constexpr(e)
    if isinstance(e, (BinOp, UnOp, Select, Cast)):
        return (not _is_constexpr(e)
                and len(list(walk_exprs(e))) >= 3)
    return False


class _TempNamer:
    """Fresh-name generator that avoids every name already present in the
    kernel (repeated optimization passes must not collide)."""

    def __init__(self, prefix: str, kernel: KernelIR):
        self.prefix = prefix
        self.n = 0
        self.taken = _all_var_names(kernel)

    def fresh(self) -> str:
        while True:
            self.n += 1
            name = f"{self.prefix}{self.n}"
            if name not in self.taken:
                self.taken.add(name)
                return name


def _all_var_names(kernel: KernelIR) -> Set[str]:
    from .visitors import iter_all_exprs, walk_stmts

    names: Set[str] = set()
    for s in walk_stmts(kernel.body):
        if isinstance(s, (VarDecl, Assign)):
            names.add(s.name)
        if isinstance(s, ForRange):
            names.add(s.var)
    for e in iter_all_exprs(kernel.body):
        if isinstance(e, VarRef):
            names.add(e.name)
    return names


# --------------------------------------------------------------------------
# Common-subexpression elimination
# --------------------------------------------------------------------------


class _CseState:
    """Available-expression table for one straight-line run."""

    def __init__(self):
        self.temp_for: Dict[str, str] = {}     # expr key -> temp var
        self.deps_of: Dict[str, Set[str]] = {}  # expr key -> var deps

    def kill(self, var: str) -> None:
        dead = [k for k, deps in self.deps_of.items() if var in deps]
        for k in dead:
            self.deps_of.pop(k, None)
            self.temp_for.pop(k, None)

    def copy(self) -> "_CseState":
        fresh = _CseState()
        fresh.temp_for = dict(self.temp_for)
        fresh.deps_of = {k: set(v) for k, v in self.deps_of.items()}
        return fresh


def _count_keys(body: Sequence[Stmt], counts: Dict[str, int]) -> None:
    from .visitors import stmt_exprs

    for s in body:
        if not isinstance(s, ForRange):     # loop bounds are never CSE'd
            for top in stmt_exprs(s):
                for e in walk_exprs(top):
                    if _is_candidate(e):
                        counts[_key(e)] = counts.get(_key(e), 0) + 1
        if isinstance(s, If):
            _count_keys(s.then_body, counts)
            _count_keys(s.else_body, counts)
        elif isinstance(s, ForRange):
            _count_keys(s.body, counts)


def eliminate_common_subexpressions(kernel: KernelIR) -> KernelIR:
    """Local value numbering (see module docstring)."""
    namer = _TempNamer("_cse", kernel)

    def rewrite_expr(e: Expr, state: _CseState, counts: Dict[str, int],
                     pre: List[Stmt]) -> Expr:
        kids = e.children()
        if kids:
            new_kids = tuple(rewrite_expr(c, state, counts, pre)
                             for c in kids)
            if any(n is not o for n, o in zip(new_kids, kids)):
                e = e.with_children(*new_kids)
        if not _is_candidate(e):
            return e
        key = _key(e)
        if key in state.temp_for:
            return VarRef(state.temp_for[key], type=e.type)
        if counts.get(key, 0) >= 2:
            temp = namer.fresh()
            pre.append(VarDecl(temp, e, e.type))
            state.temp_for[key] = temp
            state.deps_of[key] = _deps(e) | {temp}
            return VarRef(temp, type=e.type)
        return e

    def rewrite_body(body: Sequence[Stmt], state: _CseState) -> List[Stmt]:
        counts: Dict[str, int] = {}
        _count_keys(body, counts)
        out: List[Stmt] = []
        for s in body:
            pre: List[Stmt] = []
            if isinstance(s, VarDecl):
                init = rewrite_expr(s.init, state, counts, pre)
                out.extend(pre)
                state.kill(s.name)
                out.append(VarDecl(s.name, init, s.type))
            elif isinstance(s, Assign):
                value = rewrite_expr(s.value, state, counts, pre)
                out.extend(pre)
                state.kill(s.name)
                out.append(Assign(s.name, value))
            elif isinstance(s, OutputWrite):
                value = rewrite_expr(s.value, state, counts, pre)
                out.extend(pre)
                out.append(OutputWrite(value))
            elif isinstance(s, If):
                cond = rewrite_expr(s.cond, state, counts, pre)
                out.extend(pre)
                then_body = rewrite_body(s.then_body, state.copy())
                else_body = rewrite_body(s.else_body, state.copy())
                out.append(If(cond, then_body, else_body))
            elif isinstance(s, ForRange):
                # loop bounds stay untouched: they are loop setup, and
                # rewriting them to temps would hide trip counts from the
                # unroller and the instruction-mix analysis
                inner = rewrite_body(s.body, _CseState())
                out.append(ForRange(s.var, s.start, s.stop, s.step, inner))
                # conservatively drop everything the loop may invalidate
                for assigned in _assigned_vars(s.body) | {s.var}:
                    state.kill(assigned)
            else:
                out.append(s)
        return out

    return dataclasses.replace(kernel,
                               body=rewrite_body(kernel.body, _CseState()))


def _assigned_vars(body: Sequence[Stmt]) -> Set[str]:
    names: Set[str] = set()
    for s in body:
        if isinstance(s, (VarDecl, Assign)):
            names.add(s.name)
        elif isinstance(s, If):
            names |= _assigned_vars(s.then_body)
            names |= _assigned_vars(s.else_body)
        elif isinstance(s, ForRange):
            names.add(s.var)
            names |= _assigned_vars(s.body)
    return names


# --------------------------------------------------------------------------
# Loop-invariant code motion
# --------------------------------------------------------------------------


def hoist_loop_invariants(kernel: KernelIR) -> KernelIR:
    """Hoist maximal invariant subexpressions out of loops (innermost
    first).  Only expressions in the loop's straight-line statements are
    hoisted — code under ``if`` stays put (it may be conditionally
    reachable)."""
    namer = _TempNamer("_licm", kernel)

    def invariant(e: Expr, banned: Set[str]) -> bool:
        return not (_deps(e) & banned)

    def hoist_from_expr(e: Expr, banned: Set[str],
                        hoisted: Dict[str, Tuple[str, Expr]]) -> Expr:
        # maximal-subtree first: if the whole expression is invariant and
        # worth naming, lift it
        if _is_candidate(e) and invariant(e, banned) and not is_const(e):
            key = _key(e)
            if key not in hoisted:
                hoisted[key] = (namer.fresh(), e)
            name, _ = hoisted[key]
            return VarRef(name, type=e.type)
        kids = e.children()
        if kids:
            new_kids = tuple(hoist_from_expr(c, banned, hoisted)
                             for c in kids)
            if any(n is not o for n, o in zip(new_kids, kids)):
                e = e.with_children(*new_kids)
        return e

    def process_body(body: Sequence[Stmt]) -> List[Stmt]:
        out: List[Stmt] = []
        for s in body:
            if isinstance(s, If):
                out.append(If(s.cond, process_body(s.then_body),
                              process_body(s.else_body)))
                continue
            if not isinstance(s, ForRange):
                out.append(s)
                continue
            inner = process_body(s.body)           # innermost first
            banned = _assigned_vars(inner) | {s.var}
            hoisted: Dict[str, Tuple[str, Expr]] = {}
            new_inner: List[Stmt] = []
            for stmt in inner:
                if isinstance(stmt, VarDecl):
                    new_inner.append(VarDecl(
                        stmt.name,
                        hoist_from_expr(stmt.init, banned, hoisted),
                        stmt.type))
                elif isinstance(stmt, Assign):
                    new_inner.append(Assign(
                        stmt.name,
                        hoist_from_expr(stmt.value, banned, hoisted)))
                elif isinstance(stmt, OutputWrite):
                    new_inner.append(OutputWrite(
                        hoist_from_expr(stmt.value, banned, hoisted)))
                else:
                    new_inner.append(stmt)
            for name, expr in hoisted.values():
                out.append(VarDecl(name, expr, expr.type))
            out.append(ForRange(s.var, s.start, s.stop, s.step, new_inner))
        return out

    return dataclasses.replace(kernel, body=process_body(kernel.body))


def optimize_for_device(kernel: KernelIR, passes: int = 2) -> KernelIR:
    """CSE + LICM to a fixed point (bounded) — what nvcc / the OpenCL
    compiler would do to the generated source.  Used by the resource
    estimator and exposed as an explicit compile option."""
    from .transforms import propagate_constants

    result = propagate_constants(kernel)
    for _ in range(max(1, passes)):
        result = eliminate_common_subexpressions(result)
        result = hoist_loop_invariants(result)
    return result
