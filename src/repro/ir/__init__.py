"""Typed kernel intermediate representation.

The frontend lowers the restricted-Python kernel body into this IR; analyses
(CFG construction, read/write analysis, window inference), transformations
(constant propagation, loop unrolling) and both code-generation backends
operate on it, as does the functional GPU simulator.  This mirrors HIPAcc's
use of the Clang AST as the single representation shared by its analyses and
its CUDA/OpenCL printers.
"""

from .nodes import (  # noqa: F401
    AccessorRead,
    Assign,
    BinOp,
    BoolConst,
    Call,
    Cast,
    Expr,
    FloatConst,
    ForRange,
    GidX,
    GidY,
    If,
    IntConst,
    KernelIR,
    MaskRead,
    OutputWrite,
    Select,
    Stmt,
    UnOp,
    VarDecl,
    VarRef,
    const_int_value,
    is_const,
)
from .visitors import ExprTransformer, walk_exprs, walk_stmts  # noqa: F401
from .printer import format_kernel  # noqa: F401
from .typecheck import typecheck_kernel  # noqa: F401
from .cfg import CFG, build_cfg  # noqa: F401
from .analysis import (  # noqa: F401
    AccessInfo,
    InstructionMix,
    analyze_accesses,
    count_instruction_mix,
    infer_window,
)
from .transforms import propagate_constants, unroll_loops  # noqa: F401
from .optimize import (  # noqa: F401
    eliminate_common_subexpressions,
    hoist_loop_invariants,
    optimize_for_device,
)
