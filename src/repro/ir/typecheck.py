"""Type checking and inference over the kernel IR.

Fills in the ``type`` slot of every expression, inserts implicit
:class:`~repro.ir.nodes.Cast` nodes where C's usual arithmetic conversions
would, and enforces structural rules:

* locals are declared (via first assignment) before use;
* loop variables are ``int`` and not reassigned in the loop body;
* every control path that terminates the kernel performs exactly one
  ``output()`` write — HIPAcc kernels produce one pixel per work-item;
* Accessor/Mask reads refer to declared metadata objects.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..errors import TypeError_, VerificationError
from ..intrinsics import intrinsic_result_type, resolve
from ..types import BOOL, FLOAT, INT, ScalarType, promote
from .nodes import (
    AccessorRead,
    Assign,
    BinOp,
    BoolConst,
    Call,
    Cast,
    COMPARISON_OPS,
    Expr,
    FloatConst,
    ForRange,
    GidX,
    GidY,
    If,
    IntConst,
    KernelIR,
    LOGICAL_OPS,
    MaskRead,
    OutputWrite,
    Select,
    Stmt,
    UnOp,
    VarDecl,
    VarRef,
)


class _Scope:
    """Lexically nested symbol table for kernel locals."""

    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.vars: Dict[str, ScalarType] = {}
        self.loop_vars: set = set()

    def lookup(self, name: str) -> Optional[ScalarType]:
        s: Optional[_Scope] = self
        while s is not None:
            if name in s.vars:
                return s.vars[name]
            s = s.parent
        return None

    def is_loop_var(self, name: str) -> bool:
        s: Optional[_Scope] = self
        while s is not None:
            if name in s.loop_vars:
                return True
            s = s.parent
        return False


def _coerce(e: Expr, target: ScalarType) -> Expr:
    """Insert a Cast unless *e* already has *target* type."""
    if e.type == target:
        return e
    return Cast(target, e, type=target)


class TypeChecker:
    def __init__(self, kernel: KernelIR):
        self.kernel = kernel
        self.accessor_names = {a.name for a in kernel.accessors}
        self.mask_names = {m.name for m in kernel.masks}

    # -- expressions -------------------------------------------------------

    def check_expr(self, e: Expr, scope: _Scope) -> Expr:
        if isinstance(e, IntConst):
            return dataclasses.replace(e, type=e.type or INT)
        if isinstance(e, FloatConst):
            return dataclasses.replace(e, type=e.type or FLOAT)
        if isinstance(e, BoolConst):
            return dataclasses.replace(e, type=BOOL)
        if isinstance(e, (GidX, GidY)):
            return dataclasses.replace(e, type=INT)
        if isinstance(e, VarRef):
            t = scope.lookup(e.name)
            if t is None:
                raise VerificationError(
                    f"use of undeclared variable {e.name!r}")
            return dataclasses.replace(e, type=t)
        if isinstance(e, AccessorRead):
            if e.accessor not in self.accessor_names:
                raise VerificationError(
                    f"kernel reads unknown accessor {e.accessor!r}")
            dx = self.check_expr(e.dx, scope)
            dy = self.check_expr(e.dy, scope)
            for off, axis in ((dx, "x"), (dy, "y")):
                if off.type is None or not off.type.is_integer:
                    raise TypeError_(
                        f"accessor {e.accessor!r}: {axis}-offset must be an "
                        f"integer expression, got {off.type}")
            pt = self.kernel.accessor(e.accessor).pixel_type
            return dataclasses.replace(e, dx=dx, dy=dy, type=pt)
        if isinstance(e, MaskRead):
            if e.mask not in self.mask_names:
                raise VerificationError(
                    f"kernel reads unknown mask {e.mask!r}")
            dx = self.check_expr(e.dx, scope)
            dy = self.check_expr(e.dy, scope)
            pt = self.kernel.mask(e.mask).pixel_type
            return dataclasses.replace(e, dx=dx, dy=dy, type=pt)
        if isinstance(e, UnOp):
            operand = self.check_expr(e.operand, scope)
            if e.op == "!":
                return dataclasses.replace(
                    e, operand=_coerce(operand, BOOL), type=BOOL)
            if e.op == "~" and operand.type.is_float:
                raise TypeError_("operator ~ requires an integer operand")
            t = operand.type if e.op != "~" else operand.type
            return dataclasses.replace(e, operand=operand, type=t)
        if isinstance(e, BinOp):
            lhs = self.check_expr(e.lhs, scope)
            rhs = self.check_expr(e.rhs, scope)
            if e.op in LOGICAL_OPS:
                return dataclasses.replace(
                    e, lhs=_coerce(lhs, BOOL), rhs=_coerce(rhs, BOOL),
                    type=BOOL)
            common = promote(lhs.type, rhs.type)
            if e.op in ("%", "<<", ">>", "&", "|", "^") and common.is_float:
                raise TypeError_(
                    f"operator {e.op!r} requires integer operands, got "
                    f"{lhs.type} and {rhs.type}")
            lhs = _coerce(lhs, common)
            rhs = _coerce(rhs, common)
            result = BOOL if e.op in COMPARISON_OPS else common
            return dataclasses.replace(e, lhs=lhs, rhs=rhs, type=result)
        if isinstance(e, Call):
            intr = resolve(e.func)
            if len(e.args) != intr.arity:
                raise TypeError_(
                    f"{e.func} expects {intr.arity} argument(s), "
                    f"got {len(e.args)}")
            args = tuple(self.check_expr(a, scope) for a in e.args)
            rt = intrinsic_result_type(intr.name, [a.type for a in args])
            # float intrinsics coerce integer arguments
            if rt.is_float:
                args = tuple(
                    _coerce(a, rt) if a.type.is_integer or a.type != rt
                    else a
                    for a in args)
            return dataclasses.replace(e, func=intr.name, args=args, type=rt)
        if isinstance(e, Cast):
            operand = self.check_expr(e.operand, scope)
            return dataclasses.replace(e, operand=operand, type=e.target)
        if isinstance(e, Select):
            cond = _coerce(self.check_expr(e.cond, scope), BOOL)
            a = self.check_expr(e.if_true, scope)
            b = self.check_expr(e.if_false, scope)
            common = promote(a.type, b.type)
            return dataclasses.replace(
                e, cond=cond, if_true=_coerce(a, common),
                if_false=_coerce(b, common), type=common)
        raise VerificationError(f"unknown expression node {type(e).__name__}")

    # -- statements --------------------------------------------------------

    def _locate(self, exc, s: Stmt):
        """Attach *s*'s source location to an unlocated type/verify error."""
        if exc.lineno is not None or s.lineno is None:
            return exc
        line = None
        src = self.kernel.source_lines
        if 0 < s.lineno <= len(src):
            line = src[s.lineno - 1]
        return type(exc)(str(exc), s.lineno, line)

    def check_body(self, body: List[Stmt], scope: _Scope) -> List[Stmt]:
        out: List[Stmt] = []
        for s in body:
            try:
                out.append(self.check_stmt(s, scope))
            except (TypeError_, VerificationError) as exc:
                raise self._locate(exc, s) from None
        return out

    def check_stmt(self, s: Stmt, scope: _Scope) -> Stmt:
        if isinstance(s, VarDecl):
            init = self.check_expr(s.init, scope)
            declared = s.type or init.type
            if scope.lookup(s.name) is not None:
                raise VerificationError(
                    f"redeclaration of variable {s.name!r}")
            scope.vars[s.name] = declared
            return dataclasses.replace(
                s, init=_coerce(init, declared), type=declared)
        if isinstance(s, Assign):
            t = scope.lookup(s.name)
            if t is None:
                raise VerificationError(
                    f"assignment to undeclared variable {s.name!r}")
            if scope.is_loop_var(s.name):
                raise VerificationError(
                    f"loop variable {s.name!r} may not be reassigned")
            value = self.check_expr(s.value, scope)
            return dataclasses.replace(s, value=_coerce(value, t))
        if isinstance(s, If):
            cond = _coerce(self.check_expr(s.cond, scope), BOOL)
            then_scope = _Scope(scope)
            else_scope = _Scope(scope)
            return dataclasses.replace(
                s, cond=cond,
                then_body=self.check_body(s.then_body, then_scope),
                else_body=self.check_body(s.else_body, else_scope))
        if isinstance(s, ForRange):
            start = self.check_expr(s.start, scope)
            stop = self.check_expr(s.stop, scope)
            step = self.check_expr(s.step, scope)
            for bound, label in ((start, "start"), (stop, "stop"),
                                 (step, "step")):
                if not bound.type.is_integer:
                    raise TypeError_(
                        f"loop {label} bound must be integer, got "
                        f"{bound.type}")
            if scope.lookup(s.var) is not None:
                raise VerificationError(
                    f"loop variable {s.var!r} shadows an existing variable")
            inner = _Scope(scope)
            inner.vars[s.var] = INT
            inner.loop_vars.add(s.var)
            return dataclasses.replace(
                s, start=_coerce(start, INT), stop=_coerce(stop, INT),
                step=_coerce(step, INT), body=self.check_body(s.body, inner))
        if isinstance(s, OutputWrite):
            value = self.check_expr(s.value, scope)
            return dataclasses.replace(
                s, value=_coerce(value, self.kernel.pixel_type))
        raise VerificationError(f"unknown statement node {type(s).__name__}")


def _count_output_writes(body: List[Stmt],
                         source_lines: Tuple[str, ...] = ()) -> int:
    """Minimum number of output writes along any path would be ideal; we
    verify the simpler HIPAcc rule: at least one write exists and writes do
    not appear inside loops (each work-item writes its pixel once)."""
    n = 0
    for s in body:
        if isinstance(s, OutputWrite):
            n += 1
        elif isinstance(s, If):
            n += min(_count_output_writes(s.then_body, source_lines),
                     _count_output_writes(s.else_body, source_lines))
        elif isinstance(s, ForRange):
            if _count_output_writes(s.body, source_lines):
                lineno = s.lineno
                line = None
                if lineno is not None and 0 < lineno <= len(source_lines):
                    line = source_lines[lineno - 1]
                raise VerificationError(
                    "output() may not be written inside a loop",
                    lineno, line)
    return n


def typecheck_kernel(kernel: KernelIR) -> KernelIR:
    """Return a fully-typed copy of *kernel* (see module docstring)."""
    checker = TypeChecker(kernel)
    scope = _Scope()
    # Non-baked scalar parameters are in scope as read-only variables.
    for p in kernel.params:
        if not p.baked:
            scope.vars[p.name] = p.type
            scope.loop_vars.add(p.name)  # reuse: forbids reassignment
    body = checker.check_body(kernel.body, scope)
    if _count_output_writes(body, kernel.source_lines) < 1:
        raise VerificationError(
            f"kernel {kernel.name!r} never writes output() on some path")
    return dataclasses.replace(kernel, body=body)
