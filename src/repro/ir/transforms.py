"""IR-to-IR transformations.

The paper's outlook (Section VIII) plans "to unroll the loops of convolutions
and to propagate the constants of the filter masks" — blocked there by
Clang's missing lambda support.  Our frontend has no such limitation, so both
transforms are implemented and exposed as compiler options:

* :func:`propagate_constants` — classic sparse conditional constant folding
  over straight-line code plus algebraic simplification; folds intrinsic
  calls on constant arguments and constant filter-mask reads.
* :func:`unroll_loops` — fully unrolls ``ForRange`` loops with constant
  bounds below a body-size budget, substituting the induction variable.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..intrinsics import python_value
from ..types import BOOL, ScalarType
from .nodes import (
    Assign,
    BinOp,
    BoolConst,
    Call,
    Cast,
    Expr,
    FloatConst,
    ForRange,
    If,
    IntConst,
    KernelIR,
    MaskRead,
    OutputWrite,
    Select,
    Stmt,
    UnOp,
    VarDecl,
    VarRef,
    const_int_value,
    is_const,
)
from .visitors import walk_exprs, walk_stmts


def _const_value(e: Expr):
    if isinstance(e, (IntConst, FloatConst)):
        return e.value
    if isinstance(e, BoolConst):
        return e.value
    return None


def _typed_const_value(e: Expr):
    """Constant value carried in the node's own precision, so folding
    computes exactly what the float32 device code would."""
    v = _const_value(e)
    if v is None or isinstance(v, bool):
        return v
    if e.type is not None:
        return e.type.np_dtype.type(v)
    return v


def _make_const(value, type_: Optional[ScalarType]) -> Expr:
    if isinstance(value, bool):
        return BoolConst(value, BOOL)
    if isinstance(value, (int, np.integer)):
        if type_ is not None and type_.is_float:
            return FloatConst(float(value), type_)
        return IntConst(int(value), type_)
    return FloatConst(float(value), type_)


_FOLDABLE_BINOPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "&&": lambda a, b: bool(a) and bool(b),
    "||": lambda a, b: bool(a) or bool(b),
}


def fold_expr(e: Expr, env: Dict[str, Expr],
              masks: Optional[Dict[str, np.ndarray]] = None) -> Expr:
    """Bottom-up constant folding of *e* under variable bindings *env*.

    *env* maps variable names to constant expressions; *masks* maps mask
    names to coefficient arrays for folding ``MaskRead`` at constant offsets.
    """
    kids = e.children()
    if kids:
        new_kids = tuple(fold_expr(c, env, masks) for c in kids)
        if any(n is not o for n, o in zip(new_kids, kids)):
            e = e.with_children(*new_kids)

    if isinstance(e, VarRef) and e.name in env:
        bound = env[e.name]
        t = e.type or bound.type
        return _make_const(_const_value(bound), t)

    if isinstance(e, Cast) and is_const(e.operand):
        v = _const_value(e.operand)
        if e.target.is_float:
            return FloatConst(float(v), e.target)
        if e.target == BOOL:
            return BoolConst(bool(v), BOOL)
        return IntConst(int(v), e.target)

    if isinstance(e, UnOp) and is_const(e.operand):
        v = _typed_const_value(e.operand)
        if e.op == "-":
            return _make_const(-v, e.type)
        if e.op == "+":
            return _make_const(v, e.type)
        if e.op == "!":
            return BoolConst(not v, BOOL)
        if e.op == "~":
            return IntConst(~int(v), e.type)

    if isinstance(e, BinOp):
        lv, rv = _const_value(e.lhs), _const_value(e.rhs)
        both_const = is_const(e.lhs) and is_const(e.rhs)
        if both_const and e.op in _FOLDABLE_BINOPS:
            # compute in the result type's precision (float32 on device)
            tl, tr = _typed_const_value(e.lhs), _typed_const_value(e.rhs)
            folded = _FOLDABLE_BINOPS[e.op](tl, tr)
            if isinstance(folded, np.generic):
                folded = folded.item()
            return _make_const(folded, e.type)
        if both_const and e.op == "/" and rv not in (0, 0.0):
            if e.type is not None and e.type.is_integer:
                return _make_const(int(lv) // int(rv)
                                   if (lv >= 0) == (rv >= 0)
                                   else -(-int(lv) // int(rv)), e.type)
            tl, tr = _typed_const_value(e.lhs), _typed_const_value(e.rhs)
            folded = tl / tr
            if isinstance(folded, np.generic):
                folded = folded.item()
            return _make_const(folded, e.type)
        if both_const and e.op == "%" and rv not in (0,):
            return _make_const(int(np.fmod(int(lv), int(rv))), e.type)
        if both_const and e.op in ("<<", ">>", "&", "|", "^"):
            ops = {"<<": lambda a, b: a << b, ">>": lambda a, b: a >> b,
                   "&": lambda a, b: a & b, "|": lambda a, b: a | b,
                   "^": lambda a, b: a ^ b}
            return _make_const(ops[e.op](int(lv), int(rv)), e.type)
        # algebraic identities
        if e.op == "+" and lv == 0 and is_const(e.lhs):
            return e.rhs
        if e.op == "+" and rv == 0 and is_const(e.rhs):
            return e.lhs
        if e.op == "-" and rv == 0 and is_const(e.rhs):
            return e.lhs
        if e.op == "*" and is_const(e.lhs) and lv == 1:
            return e.rhs
        if e.op == "*" and is_const(e.rhs) and rv == 1:
            return e.lhs
        if e.op == "*" and ((is_const(e.lhs) and lv == 0) or
                            (is_const(e.rhs) and rv == 0)):
            if e.type is not None and not _has_side_effects(e):
                return _make_const(0, e.type)

    if isinstance(e, Call) and all(is_const(a) for a in e.args):
        try:
            v = python_value(e.func,
                             *[_typed_const_value(a) for a in e.args])
        except Exception:
            return e
        if e.type is not None and not isinstance(v, bool):
            v = e.type.np_dtype.type(v).item()
        return _make_const(v, e.type)

    if isinstance(e, Select) and is_const(e.cond):
        return e.if_true if _const_value(e.cond) else e.if_false

    if (isinstance(e, MaskRead) and masks is not None
            and e.mask in masks):
        dx = const_int_value(e.dx)
        dy = const_int_value(e.dy)
        if dx is not None and dy is not None:
            coeffs = masks[e.mask]
            h, w = coeffs.shape
            iy, ix = dy + h // 2, dx + w // 2
            if 0 <= iy < h and 0 <= ix < w:
                return FloatConst(float(coeffs[iy, ix]), e.type)

    return e


def _has_side_effects(e: Expr) -> bool:
    from .nodes import AccessorRead
    return any(isinstance(sub, AccessorRead) for sub in walk_exprs(e))


def propagate_constants(kernel: KernelIR,
                        fold_masks: bool = False) -> KernelIR:
    """Propagate constants through the kernel body.

    Locals whose single reaching definition is a constant are substituted;
    constant sub-expressions fold.  With *fold_masks*, reads of
    compile-time-constant Mask objects at constant offsets become literals
    (the paper's planned mask constant propagation).
    """
    mask_arrays = None
    if fold_masks:
        mask_arrays = {
            m.name: np.asarray(m.coefficients)
            for m in kernel.masks
            if m.compile_time_constant and m.coefficients is not None
        }

    # Names assigned more than once (or inside loops/branches) are unsafe to
    # bind; collect them first.
    assigned_counts: Dict[str, int] = {}
    loop_assigned: set = set()

    def scan(body: Sequence[Stmt], in_loop: bool) -> None:
        for s in body:
            if isinstance(s, (VarDecl, Assign)):
                assigned_counts[s.name] = assigned_counts.get(s.name, 0) + 1
                if in_loop:
                    loop_assigned.add(s.name)
            elif isinstance(s, If):
                scan(s.then_body, in_loop)
                scan(s.else_body, in_loop)
            elif isinstance(s, ForRange):
                scan(s.body, True)

    scan(kernel.body, False)

    def bindable(name: str) -> bool:
        return assigned_counts.get(name, 0) == 1 and name not in loop_assigned

    def rewrite(body: Sequence[Stmt], env: Dict[str, Expr]) -> List[Stmt]:
        out: List[Stmt] = []
        for s in body:
            if isinstance(s, VarDecl):
                init = fold_expr(s.init, env, mask_arrays)
                if is_const(init) and bindable(s.name):
                    env[s.name] = init
                out.append(dataclasses.replace(s, init=init))
            elif isinstance(s, Assign):
                value = fold_expr(s.value, env, mask_arrays)
                env.pop(s.name, None)
                out.append(Assign(s.name, value))
            elif isinstance(s, If):
                cond = fold_expr(s.cond, env, mask_arrays)
                if is_const(cond):
                    chosen = s.then_body if _const_value(cond) \
                        else s.else_body
                    out.extend(rewrite(chosen, env))
                else:
                    out.append(If(cond, rewrite(s.then_body, dict(env)),
                                  rewrite(s.else_body, dict(env))))
            elif isinstance(s, ForRange):
                start = fold_expr(s.start, env, mask_arrays)
                stop = fold_expr(s.stop, env, mask_arrays)
                step = fold_expr(s.step, env, mask_arrays)
                inner_env = {k: v for k, v in env.items()
                             if k not in loop_assigned}
                out.append(ForRange(s.var, start, stop, step,
                                    rewrite(s.body, inner_env)))
            elif isinstance(s, OutputWrite):
                out.append(OutputWrite(fold_expr(s.value, env, mask_arrays)))
            else:
                out.append(s)
        return out

    return dataclasses.replace(kernel, body=rewrite(kernel.body, {}))


# --------------------------------------------------------------------------
# Loop unrolling
# --------------------------------------------------------------------------


def _body_size(body: Sequence[Stmt]) -> int:
    return sum(1 for _ in walk_stmts(body))


def _substitute_var(body: Sequence[Stmt], name: str,
                    value: int) -> List[Stmt]:
    binding = {name: IntConst(value)}

    def sub(e: Expr) -> Expr:
        return fold_expr(e, binding)

    out: List[Stmt] = []
    for s in body:
        if isinstance(s, VarDecl):
            out.append(dataclasses.replace(s, init=sub(s.init)))
        elif isinstance(s, Assign):
            out.append(Assign(s.name, sub(s.value)))
        elif isinstance(s, If):
            cond = sub(s.cond)
            if is_const(cond):
                out.extend(_substitute_var(
                    s.then_body if _const_value(cond) else s.else_body,
                    name, value))
            else:
                out.append(If(cond, _substitute_var(s.then_body, name, value),
                              _substitute_var(s.else_body, name, value)))
        elif isinstance(s, ForRange):
            out.append(ForRange(s.var, sub(s.start), sub(s.stop),
                                sub(s.step),
                                _substitute_var(s.body, name, value)))
        elif isinstance(s, OutputWrite):
            out.append(OutputWrite(sub(s.value)))
        else:
            out.append(s)
    return out


def _rename_locals(body: Sequence[Stmt], suffix: str) -> List[Stmt]:
    """Rename VarDecl'd locals in *body* by appending *suffix* so that
    unrolled iterations do not redeclare the same names."""
    declared = {s.name for s in walk_stmts(body) if isinstance(s, VarDecl)}
    if not declared:
        return list(body)
    return _rename_locals_inner(body, suffix, declared)


def _rename_locals_inner(body: Sequence[Stmt], suffix: str,
                         declared: set) -> List[Stmt]:
    def rn(e: Expr) -> Expr:
        kids = e.children()
        if kids:
            e = e.with_children(*(rn(c) for c in kids))
        if isinstance(e, VarRef) and e.name in declared:
            return dataclasses.replace(e, name=e.name + suffix)
        return e

    out: List[Stmt] = []
    for s in body:
        if isinstance(s, VarDecl):
            name = s.name + suffix if s.name in declared else s.name
            out.append(VarDecl(name, rn(s.init), s.type))
        elif isinstance(s, Assign):
            name = s.name + suffix if s.name in declared else s.name
            out.append(Assign(name, rn(s.value)))
        elif isinstance(s, If):
            out.append(If(rn(s.cond),
                          _rename_locals_inner(s.then_body, suffix, declared),
                          _rename_locals_inner(s.else_body, suffix,
                                               declared)))
        elif isinstance(s, ForRange):
            out.append(ForRange(s.var, rn(s.start), rn(s.stop), rn(s.step),
                                _rename_locals_inner(s.body, suffix,
                                                     declared)))
        elif isinstance(s, OutputWrite):
            out.append(OutputWrite(rn(s.value)))
        else:
            out.append(s)
    return out


def unroll_loops(kernel: KernelIR, max_body_stmts: int = 4096) -> KernelIR:
    """Fully unroll constant-trip-count loops (innermost-out).

    Loops whose unrolled size would exceed *max_body_stmts* statements are
    left intact — mirroring a compiler unroll budget.
    """

    def rewrite(body: Sequence[Stmt]) -> List[Stmt]:
        out: List[Stmt] = []
        for s in body:
            if isinstance(s, If):
                out.append(If(s.cond, rewrite(s.then_body),
                              rewrite(s.else_body)))
                continue
            if not isinstance(s, ForRange):
                out.append(s)
                continue
            inner = rewrite(s.body)
            start = const_int_value(fold_expr(s.start, {}))
            stop = const_int_value(fold_expr(s.stop, {}))
            step = const_int_value(fold_expr(s.step, {}))
            if None in (start, stop, step) or step == 0:
                out.append(ForRange(s.var, s.start, s.stop, s.step, inner))
                continue
            values = list(range(start, stop, step))
            if len(values) * _body_size(inner) > max_body_stmts:
                out.append(ForRange(s.var, s.start, s.stop, s.step, inner))
                continue
            for i, v in enumerate(values):
                iteration = _substitute_var(inner, s.var, v)
                out.extend(_rename_locals(iteration, f"_u{s.var}{i}"))
        return out

    return dataclasses.replace(kernel, body=rewrite(kernel.body))
