"""Generic traversal and rewriting utilities over the kernel IR."""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterator, List, Sequence

from .nodes import (
    Assign,
    Expr,
    ForRange,
    If,
    OutputWrite,
    Stmt,
    VarDecl,
)


def walk_exprs(e: Expr) -> Iterator[Expr]:
    """Yield *e* and every sub-expression, pre-order."""
    yield e
    for c in e.children():
        yield from walk_exprs(c)


def walk_stmts(body: Sequence[Stmt]) -> Iterator[Stmt]:
    """Yield every statement in *body*, recursing into nested bodies."""
    for s in body:
        yield s
        if isinstance(s, If):
            yield from walk_stmts(s.then_body)
            yield from walk_stmts(s.else_body)
        elif isinstance(s, ForRange):
            yield from walk_stmts(s.body)


def stmt_exprs(s: Stmt) -> Iterator[Expr]:
    """Yield the expressions directly held by statement *s* (not nested
    statements' expressions — combine with :func:`walk_stmts` for those)."""
    if isinstance(s, VarDecl):
        yield s.init
    elif isinstance(s, Assign):
        yield s.value
    elif isinstance(s, If):
        yield s.cond
    elif isinstance(s, ForRange):
        yield s.start
        yield s.stop
        yield s.step
    elif isinstance(s, OutputWrite):
        yield s.value


def iter_all_exprs(body: Sequence[Stmt]) -> Iterator[Expr]:
    """Yield every expression (including sub-expressions) in *body*."""
    for s in walk_stmts(body):
        for e in stmt_exprs(s):
            yield from walk_exprs(e)


class ExprTransformer:
    """Bottom-up expression rewriter.

    Subclasses override ``visit_<NodeName>`` methods; each receives a node
    whose children have already been rewritten and returns a replacement
    expression.  ``rewrite_body`` applies the transform to every expression
    position in a statement list, rebuilding statements as needed.
    """

    def visit(self, e: Expr) -> Expr:
        kids = e.children()
        if kids:
            new_kids = tuple(self.visit(c) for c in kids)
            if any(n is not o for n, o in zip(new_kids, kids)):
                e = e.with_children(*new_kids)
        method = getattr(self, f"visit_{type(e).__name__}", None)
        if method is not None:
            return method(e)
        return e

    def rewrite_body(self, body: Sequence[Stmt]) -> List[Stmt]:
        out: List[Stmt] = []
        for s in body:
            out.append(self.rewrite_stmt(s))
        return out

    def rewrite_stmt(self, s: Stmt) -> Stmt:
        if isinstance(s, VarDecl):
            return dataclasses.replace(s, init=self.visit(s.init))
        if isinstance(s, Assign):
            return dataclasses.replace(s, value=self.visit(s.value))
        if isinstance(s, If):
            return dataclasses.replace(
                s, cond=self.visit(s.cond),
                then_body=self.rewrite_body(s.then_body),
                else_body=self.rewrite_body(s.else_body))
        if isinstance(s, ForRange):
            return dataclasses.replace(
                s, start=self.visit(s.start), stop=self.visit(s.stop),
                step=self.visit(s.step), body=self.rewrite_body(s.body))
        if isinstance(s, OutputWrite):
            return dataclasses.replace(s, value=self.visit(s.value))
        return s


class LambdaTransformer(ExprTransformer):
    """ExprTransformer driven by a single ``fn(expr) -> expr`` callback
    applied to every node bottom-up."""

    def __init__(self, fn: Callable[[Expr], Expr]):
        self._fn = fn

    def visit(self, e: Expr) -> Expr:
        kids = e.children()
        if kids:
            new_kids = tuple(self.visit(c) for c in kids)
            if any(n is not o for n, o in zip(new_kids, kids)):
                e = e.with_children(*new_kids)
        return self._fn(e)


def map_exprs(body: Sequence[Stmt], fn: Callable[[Expr], Expr]) -> List[Stmt]:
    """Rewrite every expression in *body* with *fn* (bottom-up)."""
    return LambdaTransformer(fn).rewrite_body(body)
