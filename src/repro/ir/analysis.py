"""Static analyses over the kernel IR.

* :func:`analyze_accesses` — the paper's read/write analysis (Section IV-A):
  traverse the CFG and record, per Accessor, whether it is read, how many
  syntactic read sites exist, and the constant offset ranges when they can be
  determined.  The backends use this to pick texture read vs. write paths and
  to emit OpenCL ``read_only``/``write_only`` qualifiers.

* :func:`infer_window` — the window (2m+1)x(2n+1) a local operator touches,
  combining BoundaryCondition metadata with offsets derived from constant
  loop bounds.

* :func:`count_instruction_mix` — a weighted dynamic instruction count per
  output pixel (ALU ops, SFU/transcendental ops, memory reads), feeding the
  resource estimator and the analytical timing model.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..intrinsics import resolve
from .cfg import build_cfg
from .nodes import (
    AccessorRead,
    Assign,
    BinOp,
    Call,
    Cast,
    Expr,
    ForRange,
    If,
    KernelIR,
    MaskRead,
    OutputWrite,
    Select,
    Stmt,
    UnOp,
    VarDecl,
    VarRef,
    const_int_value,
)
from .visitors import walk_exprs


# --------------------------------------------------------------------------
# Read/write analysis
# --------------------------------------------------------------------------


@dataclasses.dataclass
class AccessInfo:
    """Access summary for one Accessor (access metadata, paper Section II)."""

    name: str
    is_read: bool = False
    read_sites: int = 0
    #: Constant offset bounds (min_dx, max_dx, min_dy, max_dy); None when
    #: an offset is not statically constant.  ``has_x/y_bounds`` separates
    #: "no reads merged yet" from "unbounded".
    min_dx: Optional[int] = 0
    max_dx: Optional[int] = 0
    min_dy: Optional[int] = 0
    max_dy: Optional[int] = 0
    has_x_bounds: bool = False
    has_y_bounds: bool = False

    def merge_x_bounds(self, bounds: Optional[Tuple[int, int]]) -> None:
        if bounds is None:
            self.min_dx = self.max_dx = None
            self.has_x_bounds = True
        elif not self.has_x_bounds:
            self.min_dx, self.max_dx = bounds
            self.has_x_bounds = True
        elif self.min_dx is not None:
            self.min_dx = min(self.min_dx, bounds[0])
            self.max_dx = max(self.max_dx, bounds[1])

    def merge_y_bounds(self, bounds: Optional[Tuple[int, int]]) -> None:
        if bounds is None:
            self.min_dy = self.max_dy = None
            self.has_y_bounds = True
        elif not self.has_y_bounds:
            self.min_dy, self.max_dy = bounds
            self.has_y_bounds = True
        elif self.min_dy is not None:
            self.min_dy = min(self.min_dy, bounds[0])
            self.max_dy = max(self.max_dy, bounds[1])

    @property
    def window(self) -> Optional[Tuple[int, int]]:
        """(width, height) of the symmetric window covering all constant
        offsets, or None if offsets are not statically known."""
        if None in (self.min_dx, self.max_dx, self.min_dy, self.max_dy):
            return None
        half_x = max(abs(self.min_dx), abs(self.max_dx))
        half_y = max(abs(self.min_dy), abs(self.max_dy))
        return (2 * half_x + 1, 2 * half_y + 1)


def _loop_var_ranges(body: Sequence[Stmt],
                     env: Dict[str, Tuple[int, int]],
                     out: Dict[int, Dict[str, Tuple[int, int]]]) -> None:
    """Record, for each AccessorRead node id, the enclosing loop-variable
    value ranges (inclusive) so offsets like ``xf`` resolve to bounds."""
    for s in body:
        if isinstance(s, ForRange):
            start = const_int_value(s.start)
            stop = const_int_value(s.stop)
            step = const_int_value(s.step)
            inner = dict(env)
            if None not in (start, stop, step) and step != 0:
                n = max(0, (stop - start + (step - (1 if step > 0 else -1)))
                        // step)
                if n > 0:
                    last = start + (n - 1) * step
                    inner[s.var] = (min(start, last), max(start, last))
            _loop_var_ranges(s.body, inner, out)
        elif isinstance(s, If):
            _loop_var_ranges(s.then_body, env, out)
            _loop_var_ranges(s.else_body, env, out)
        for e in _stmt_top_exprs(s):
            for sub in walk_exprs(e):
                if isinstance(sub, AccessorRead):
                    out[id(sub)] = dict(env)


def _stmt_top_exprs(s: Stmt) -> List[Expr]:
    if isinstance(s, VarDecl):
        return [s.init]
    if isinstance(s, Assign):
        return [s.value]
    if isinstance(s, If):
        return [s.cond]
    if isinstance(s, ForRange):
        return [s.start, s.stop, s.step]
    if isinstance(s, OutputWrite):
        return [s.value]
    return []


def _offset_bounds(e: Expr, ranges: Dict[str, Tuple[int, int]]
                   ) -> Optional[Tuple[int, int]]:
    """Conservative (min, max) bounds of integer expression *e* under loop
    variable *ranges*; None when not statically bounded."""
    c = const_int_value(e)
    if c is not None:
        return (c, c)
    if isinstance(e, Cast):
        return _offset_bounds(e.operand, ranges)
    if isinstance(e, VarRef) and e.name in ranges:
        return ranges[e.name]
    if isinstance(e, UnOp) and e.op == "-":
        b = _offset_bounds(e.operand, ranges)
        if b is not None:
            return (-b[1], -b[0])
    if isinstance(e, BinOp) and e.op in ("+", "-", "*"):
        lb = _offset_bounds(e.lhs, ranges)
        rb = _offset_bounds(e.rhs, ranges)
        if lb is None or rb is None:
            return None
        if e.op == "+":
            return (lb[0] + rb[0], lb[1] + rb[1])
        if e.op == "-":
            return (lb[0] - rb[1], lb[1] - rb[0])
        candidates = [a * b for a in lb for b in rb]
        return (min(candidates), max(candidates))
    return None


def analyze_accesses(kernel: KernelIR) -> Dict[str, AccessInfo]:
    """Read/write analysis via CFG traversal (paper Section IV-A)."""
    infos = {a.name: AccessInfo(a.name) for a in kernel.accessors}
    ranges_by_read: Dict[int, Dict[str, Tuple[int, int]]] = {}
    _loop_var_ranges(kernel.body, {}, ranges_by_read)

    cfg = build_cfg(kernel.body)
    for idx in cfg.reverse_postorder():
        for s in cfg.blocks[idx].stmts:
            for top in _stmt_top_exprs(s):
                for e in walk_exprs(top):
                    if isinstance(e, AccessorRead):
                        info = infos[e.accessor]
                        info.is_read = True
                        info.read_sites += 1
                        ranges = ranges_by_read.get(id(e), {})
                        info.merge_x_bounds(_offset_bounds(e.dx, ranges))
                        info.merge_y_bounds(_offset_bounds(e.dy, ranges))
    return infos


def infer_window(kernel: KernelIR, accessor_name: str) -> Tuple[int, int]:
    """Window size (width, height) for *accessor_name*.

    Prefers explicit BoundaryCondition metadata (the paper requires the
    window on the BoundaryCondition); falls back to constant-offset
    inference; defaults to (1, 1) — a point operator.
    """
    acc = kernel.accessor(accessor_name)
    if acc.window != (1, 1):
        return acc.window
    info = analyze_accesses(kernel).get(accessor_name)
    if info is not None and info.window is not None:
        return info.window
    return (1, 1)


# --------------------------------------------------------------------------
# Instruction-mix estimation
# --------------------------------------------------------------------------


@dataclasses.dataclass
class InstructionMix:
    """Weighted dynamic operation counts per output pixel."""

    alu: float = 0.0            # simple arithmetic/logic ops
    sfu: float = 0.0            # transcendental ops in ALU-op equivalents
    global_reads: float = 0.0   # accessor reads (pre-lowering)
    mask_reads: float = 0.0
    branches: float = 0.0
    #: distinct (accessor, dx, dy) sites when statically enumerable —
    #: used for redundancy/data-reuse estimation
    reads_by_accessor: Dict[str, float] = dataclasses.field(
        default_factory=dict)

    @property
    def total_compute(self) -> float:
        return self.alu + self.sfu

    def scaled(self, factor: float) -> "InstructionMix":
        return InstructionMix(
            alu=self.alu * factor,
            sfu=self.sfu * factor,
            global_reads=self.global_reads * factor,
            mask_reads=self.mask_reads * factor,
            branches=self.branches * factor,
            reads_by_accessor={k: v * factor
                               for k, v in self.reads_by_accessor.items()},
        )

    def add(self, other: "InstructionMix") -> None:
        self.alu += other.alu
        self.sfu += other.sfu
        self.global_reads += other.global_reads
        self.mask_reads += other.mask_reads
        self.branches += other.branches
        for k, v in other.reads_by_accessor.items():
            self.reads_by_accessor[k] = self.reads_by_accessor.get(k, 0) + v


#: ALU-op cost of plain operators (div/mod are multi-cycle on GPUs).
_OP_COST = {
    "+": 1, "-": 1, "*": 1,
    "/": 8, "%": 12,
    "<<": 1, ">>": 1, "&": 1, "|": 1, "^": 1,
    "<": 1, "<=": 1, ">": 1, ">=": 1, "==": 1, "!=": 1,
    "&&": 1, "||": 1,
}


def _expr_mix(e: Expr, mix: InstructionMix) -> None:
    # multiplies feeding directly into an add/subtract fuse into one FMA
    fused = set()
    for sub in walk_exprs(e):
        if isinstance(sub, BinOp) and sub.op in ("+", "-"):
            for child in (sub.lhs, sub.rhs):
                if isinstance(child, BinOp) and child.op == "*":
                    fused.add(id(child))
                    break
    for sub in walk_exprs(e):
        if isinstance(sub, BinOp):
            if id(sub) in fused:
                continue               # folded into the FMA
            mix.alu += _OP_COST[sub.op]
        elif isinstance(sub, UnOp):
            mix.alu += 1
        elif isinstance(sub, Call):
            mix.sfu += resolve(sub.func).cost
        elif isinstance(sub, Select):
            mix.alu += 1
        elif isinstance(sub, Cast):
            mix.alu += 0.5
        elif isinstance(sub, AccessorRead):
            mix.global_reads += 1
            mix.reads_by_accessor[sub.accessor] = \
                mix.reads_by_accessor.get(sub.accessor, 0) + 1
            # index arithmetic for the load
            mix.alu += 2
        elif isinstance(sub, MaskRead):
            mix.mask_reads += 1


def _trip_count(s: ForRange, default: int) -> float:
    start = const_int_value(s.start)
    stop = const_int_value(s.stop)
    step = const_int_value(s.step)
    if None in (start, stop, step) or step == 0:
        return float(default)
    n = (stop - start + (step - (1 if step > 0 else -1))) // step
    return float(max(0, n))


def count_instruction_mix(body: Sequence[Stmt],
                          unknown_trip_count: int = 8) -> InstructionMix:
    """Weighted dynamic op counts for one execution of *body*.

    Loop bodies are multiplied by their (constant) trip counts; unknown trip
    counts fall back to *unknown_trip_count*.  If branches charge the longer
    arm (worst case, matching how occupancy-limited GPUs pay for divergence).
    """
    mix = InstructionMix()
    for s in body:
        if isinstance(s, (VarDecl, Assign, OutputWrite)):
            for e in _stmt_top_exprs(s):
                _expr_mix(e, mix)
            mix.alu += 0.5  # register move / store bookkeeping
        elif isinstance(s, If):
            _expr_mix(s.cond, mix)
            mix.branches += 1
            then_mix = count_instruction_mix(s.then_body, unknown_trip_count)
            else_mix = count_instruction_mix(s.else_body, unknown_trip_count)
            mix.add(then_mix if then_mix.total_compute >=
                    else_mix.total_compute else else_mix)
        elif isinstance(s, ForRange):
            for e in (s.start, s.stop, s.step):
                _expr_mix(e, mix)
            trips = _trip_count(s, unknown_trip_count)
            inner = count_instruction_mix(s.body, unknown_trip_count)
            # the device compiler fully unrolls small constant-trip loops
            # (#pragma unroll), removing the increment+compare per
            # iteration; larger/unknown loops pay loop control
            if not (const_int_value(s.start) is not None and trips <= 32):
                inner.alu += 2
                inner.branches += 1
            mix.add(inner.scaled(trips))
    return mix
