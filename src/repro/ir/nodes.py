"""IR node definitions.

Expressions and statements are small immutable dataclasses.  Every expression
carries an optional ``type`` slot that :mod:`repro.ir.typecheck` fills in; the
backends and the simulator require a type-checked kernel.

The node set deliberately matches what HIPAcc extracts from the Clang AST of
a kernel method: scalar arithmetic, math intrinsics, bounded ``for`` loops,
conditionals, reads through Accessors and Masks, and a single output write
per control path.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..types import ScalarType

# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Expr:
    """Base class for IR expressions."""

    def children(self) -> Tuple["Expr", ...]:
        return ()

    def with_children(self, *children: "Expr") -> "Expr":
        """Rebuild this node with replacement children (same arity)."""
        if children:
            raise ValueError(f"{type(self).__name__} takes no children")
        return self


@dataclass
class IntConst(Expr):
    value: int
    type: Optional[ScalarType] = None


@dataclass
class FloatConst(Expr):
    value: float
    type: Optional[ScalarType] = None


@dataclass
class BoolConst(Expr):
    value: bool
    type: Optional[ScalarType] = None


@dataclass
class VarRef(Expr):
    """Reference to a kernel-local variable or loop index."""

    name: str
    type: Optional[ScalarType] = None


@dataclass
class GidX(Expr):
    """Global x index of the current work-item within the iteration space."""

    type: Optional[ScalarType] = None


@dataclass
class GidY(Expr):
    """Global y index of the current work-item within the iteration space."""

    type: Optional[ScalarType] = None


#: Binary operators.  Comparison and logical operators yield bool.
BINARY_OPS = {
    "+", "-", "*", "/", "%",
    "<<", ">>", "&", "|", "^",
    "<", "<=", ">", ">=", "==", "!=",
    "&&", "||",
}
COMPARISON_OPS = {"<", "<=", ">", ">=", "==", "!="}
LOGICAL_OPS = {"&&", "||"}
UNARY_OPS = {"-", "+", "!", "~"}


@dataclass
class BinOp(Expr):
    op: str
    lhs: Expr
    rhs: Expr
    type: Optional[ScalarType] = None

    def __post_init__(self):
        if self.op not in BINARY_OPS:
            raise ValueError(f"unknown binary operator {self.op!r}")

    def children(self):
        return (self.lhs, self.rhs)

    def with_children(self, lhs, rhs):
        return dataclasses.replace(self, lhs=lhs, rhs=rhs)


@dataclass
class UnOp(Expr):
    op: str
    operand: Expr
    type: Optional[ScalarType] = None

    def __post_init__(self):
        if self.op not in UNARY_OPS:
            raise ValueError(f"unknown unary operator {self.op!r}")

    def children(self):
        return (self.operand,)

    def with_children(self, operand):
        return dataclasses.replace(self, operand=operand)


@dataclass
class Call(Expr):
    """Call of a math intrinsic by canonical name (e.g. ``"exp"``)."""

    func: str
    args: Tuple[Expr, ...]
    type: Optional[ScalarType] = None

    def children(self):
        return tuple(self.args)

    def with_children(self, *args):
        return dataclasses.replace(self, args=tuple(args))


@dataclass
class Cast(Expr):
    """Explicit conversion to ``target`` (also inserted by typecheck)."""

    target: ScalarType
    operand: Expr
    type: Optional[ScalarType] = None

    def children(self):
        return (self.operand,)

    def with_children(self, operand):
        return dataclasses.replace(self, operand=operand)


@dataclass
class Select(Expr):
    """Ternary ``cond ? if_true : if_false``."""

    cond: Expr
    if_true: Expr
    if_false: Expr
    type: Optional[ScalarType] = None

    def children(self):
        return (self.cond, self.if_true, self.if_false)

    def with_children(self, cond, if_true, if_false):
        return dataclasses.replace(self, cond=cond, if_true=if_true,
                                   if_false=if_false)


@dataclass
class AccessorRead(Expr):
    """Read a pixel through an Accessor at offset ``(dx, dy)`` from the
    current iteration-space point.  The centre pixel is ``(0, 0)``."""

    accessor: str
    dx: Expr = field(default_factory=lambda: IntConst(0))
    dy: Expr = field(default_factory=lambda: IntConst(0))
    type: Optional[ScalarType] = None

    def children(self):
        return (self.dx, self.dy)

    def with_children(self, dx, dy):
        return dataclasses.replace(self, dx=dx, dy=dy)


@dataclass
class MaskRead(Expr):
    """Read a filter-mask coefficient at offset ``(dx, dy)`` from centre."""

    mask: str
    dx: Expr = field(default_factory=lambda: IntConst(0))
    dy: Expr = field(default_factory=lambda: IntConst(0))
    type: Optional[ScalarType] = None

    def children(self):
        return (self.dx, self.dy)

    def with_children(self, dx, dy):
        return dataclasses.replace(self, dx=dx, dy=dy)


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class Stmt:
    """Base class for IR statements.

    Every concrete statement carries an optional ``lineno`` — the line of
    the user's ``kernel()`` method (relative to the method source, the
    numbering :class:`~repro.errors.FrontendError` uses) that produced
    it.  ``None`` for synthesized IR (fusion, tests building IR by hand).
    The field is deliberately excluded from cache-key canonicalisation:
    moving a kernel within a file must not invalidate compile artifacts.
    """


@dataclass
class VarDecl(Stmt):
    """First assignment to a local: declares ``name`` with ``init``'s type
    (or an explicit one)."""

    name: str
    init: Expr
    type: Optional[ScalarType] = None
    lineno: Optional[int] = None


@dataclass
class Assign(Stmt):
    """Re-assignment of an already-declared local."""

    name: str
    value: Expr
    lineno: Optional[int] = None


@dataclass
class If(Stmt):
    cond: Expr
    then_body: List[Stmt]
    else_body: List[Stmt] = field(default_factory=list)
    lineno: Optional[int] = None


@dataclass
class ForRange(Stmt):
    """``for var in range(start, stop, step)`` — half-open, like Python.

    The frontend produces half-open bounds from ``range``; HIPAcc's C++
    ``for (i = a; i <= b; ++i)`` loops map to ``stop = b + 1``.
    """

    var: str
    start: Expr
    stop: Expr
    step: Expr
    body: List[Stmt] = field(default_factory=list)
    lineno: Optional[int] = None


@dataclass
class OutputWrite(Stmt):
    """Write ``value`` to the output image at the current point."""

    value: Expr
    lineno: Optional[int] = None


# --------------------------------------------------------------------------
# Kernel container
# --------------------------------------------------------------------------


@dataclass
class ParamInfo:
    """A scalar kernel parameter (e.g. ``sigma_d``) with its compile-time
    value.  When ``baked`` the backends substitute the constant; otherwise it
    becomes a kernel-function argument."""

    name: str
    type: ScalarType
    value: object
    baked: bool = True


@dataclass
class AccessorInfo:
    """Frontend-resolved metadata for one Accessor used by the kernel."""

    name: str
    pixel_type: ScalarType
    boundary_mode: str            # one of repro.dsl.boundary.Boundary values
    boundary_constant: float = 0.0
    window: Tuple[int, int] = (1, 1)   # (width, height) incl. centre
    is_read: bool = False         # filled by read/write analysis
    is_written: bool = False
    #: resampling accessors (HIPAcc interpolation modes): "nearest" or
    #: "linear"; None for plain 1:1 accessors
    interpolation: Optional[str] = None
    #: iteration-space geometry the resampling accessor maps onto
    out_size: Optional[Tuple[int, int]] = None


@dataclass
class MaskInfo:
    """Frontend-resolved metadata for one Mask used by the kernel."""

    name: str
    pixel_type: ScalarType
    size: Tuple[int, int]         # (width, height), both odd
    coefficients: object = None   # np.ndarray once assigned
    compile_time_constant: bool = True


@dataclass
class KernelIR:
    """A complete type-checked kernel: metadata plus the statement body."""

    name: str
    pixel_type: ScalarType
    body: List[Stmt]
    accessors: List[AccessorInfo] = field(default_factory=list)
    masks: List[MaskInfo] = field(default_factory=list)
    params: List[ParamInfo] = field(default_factory=list)
    #: dedented source lines of the user's ``kernel()`` method; index with
    #: ``lineno - 1``.  Empty for synthesized IR.  Not part of cache keys.
    source_lines: Tuple[str, ...] = ()

    def accessor(self, name: str) -> AccessorInfo:
        for a in self.accessors:
            if a.name == name:
                return a
        raise KeyError(name)

    def mask(self, name: str) -> MaskInfo:
        for m in self.masks:
            if m.name == name:
                return m
        raise KeyError(name)

    def param(self, name: str) -> ParamInfo:
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(name)

    def footprint(self):
        """The per-accessor access footprint (read-offset hulls and halo
        extents) derived by the abstract interpreter — see
        :mod:`repro.lint.footprint`.  Computed once per IR instance and
        cached; mutating ``body`` afterwards does not invalidate it, so
        transforms must recompute on their rewritten copies.
        """
        cached = getattr(self, "_footprint_cache", None)
        if cached is None:
            from ..lint.footprint import compute_footprint
            cached = compute_footprint(self)
            self._footprint_cache = cached
        return cached


# --------------------------------------------------------------------------
# Small helpers shared by analyses and transforms
# --------------------------------------------------------------------------


def is_const(e: Expr) -> bool:
    return isinstance(e, (IntConst, FloatConst, BoolConst))


def const_int_value(e: Expr) -> Optional[int]:
    """Return the integer value of a constant expression, else ``None``.

    Evaluates simple integer arithmetic (``+``, ``-``, ``*``, unary minus,
    integer casts) so loop bounds like ``2 * sigma_d + 1`` resolve without a
    prior constant-folding pass.
    """
    if isinstance(e, IntConst):
        return e.value
    if isinstance(e, BoolConst):
        return int(e.value)
    if isinstance(e, UnOp) and e.op in ("-", "+"):
        inner = const_int_value(e.operand)
        if inner is not None:
            return -inner if e.op == "-" else inner
    if isinstance(e, Cast) and e.target is not None \
            and not e.target.is_float:
        return const_int_value(e.operand)
    if isinstance(e, BinOp) and e.op in ("+", "-", "*"):
        lhs = const_int_value(e.lhs)
        rhs = const_int_value(e.rhs)
        if lhs is not None and rhs is not None:
            if e.op == "+":
                return lhs + rhs
            if e.op == "-":
                return lhs - rhs
            return lhs * rhs
    return None
