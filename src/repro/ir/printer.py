"""Human-readable pretty printer for the kernel IR (debugging aid)."""

from __future__ import annotations

from typing import List, Sequence

from .nodes import (
    AccessorRead,
    Assign,
    BinOp,
    BoolConst,
    Call,
    Cast,
    Expr,
    FloatConst,
    ForRange,
    GidX,
    GidY,
    If,
    IntConst,
    KernelIR,
    MaskRead,
    OutputWrite,
    Select,
    Stmt,
    UnOp,
    VarDecl,
    VarRef,
)

_PRECEDENCE = {
    "||": 1, "&&": 2,
    "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


def format_expr(e: Expr, parent_prec: int = 0) -> str:
    if isinstance(e, IntConst):
        return str(e.value)
    if isinstance(e, FloatConst):
        s = repr(float(e.value))
        return s
    if isinstance(e, BoolConst):
        return "true" if e.value else "false"
    if isinstance(e, VarRef):
        return e.name
    if isinstance(e, GidX):
        return "gid_x"
    if isinstance(e, GidY):
        return "gid_y"
    if isinstance(e, AccessorRead):
        return (f"{e.accessor}({format_expr(e.dx)}, {format_expr(e.dy)})")
    if isinstance(e, MaskRead):
        return f"{e.mask}({format_expr(e.dx)}, {format_expr(e.dy)})"
    if isinstance(e, UnOp):
        inner = format_expr(e.operand, 11)
        if inner.startswith(e.op):
            inner = f"({inner})"
        return f"{e.op}{inner}"
    if isinstance(e, BinOp):
        prec = _PRECEDENCE[e.op]
        text = (f"{format_expr(e.lhs, prec)} {e.op} "
                f"{format_expr(e.rhs, prec + 1)}")
        return f"({text})" if prec < parent_prec else text
    if isinstance(e, Call):
        args = ", ".join(format_expr(a) for a in e.args)
        return f"{e.func}({args})"
    if isinstance(e, Cast):
        return f"({e.target.name}){format_expr(e.operand, 11)}"
    if isinstance(e, Select):
        text = (f"{format_expr(e.cond, 1)} ? {format_expr(e.if_true)} : "
                f"{format_expr(e.if_false)}")
        return f"({text})"
    return f"<?{type(e).__name__}?>"


def format_body(body: Sequence[Stmt], indent: int = 0) -> List[str]:
    pad = "  " * indent
    lines: List[str] = []
    for s in body:
        if isinstance(s, VarDecl):
            tname = s.type.name if s.type else "auto"
            lines.append(f"{pad}{tname} {s.name} = {format_expr(s.init)};")
        elif isinstance(s, Assign):
            lines.append(f"{pad}{s.name} = {format_expr(s.value)};")
        elif isinstance(s, If):
            lines.append(f"{pad}if ({format_expr(s.cond)}) {{")
            lines += format_body(s.then_body, indent + 1)
            if s.else_body:
                lines.append(f"{pad}}} else {{")
                lines += format_body(s.else_body, indent + 1)
            lines.append(f"{pad}}}")
        elif isinstance(s, ForRange):
            lines.append(
                f"{pad}for {s.var} in range({format_expr(s.start)}, "
                f"{format_expr(s.stop)}, {format_expr(s.step)}) {{")
            lines += format_body(s.body, indent + 1)
            lines.append(f"{pad}}}")
        elif isinstance(s, OutputWrite):
            lines.append(f"{pad}output() = {format_expr(s.value)};")
        else:
            lines.append(f"{pad}<?{type(s).__name__}?>")
    return lines


def format_kernel(kernel: KernelIR) -> str:
    """Render a kernel IR as readable pseudo-code."""
    head = [f"kernel {kernel.name} -> {kernel.pixel_type.name} {{"]
    for a in kernel.accessors:
        head.append(
            f"  accessor {a.name}: {a.pixel_type.name}, "
            f"boundary={a.boundary_mode}, window={a.window[0]}x{a.window[1]}")
    for m in kernel.masks:
        head.append(f"  mask {m.name}: {m.pixel_type.name}, "
                    f"size={m.size[0]}x{m.size[1]}")
    for p in kernel.params:
        kind = "const" if p.baked else "param"
        head.append(f"  {kind} {p.name}: {p.type.name} = {p.value}")
    return "\n".join(head + format_body(kernel.body, 1) + ["}"])
