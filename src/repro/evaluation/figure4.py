"""Figure 4: configuration-space exploration for the bilateral filter.

"we generate code for the bilateral filter using the CUDA backend on the
Tesla C2050 that explores all valid configurations ... The configuration
selected by our framework, 32x6, is in this case also the optimal
configuration ... the configurations selected by our heuristic are
typically within 10% of the best configuration."
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..backends.base import BorderMode, MaskMemory
from ..dsl.boundary import Boundary
from ..hwmodel.database import get_device
from ..hwmodel.device import DeviceSpec
from ..hwmodel.resources import estimate_resources
from ..mapping.explore import (
    ExplorationPoint,
    ExplorationTask,
    evaluate_block,
    explore_configurations,
    explore_many,
)
from ..mapping.heuristic import select_configuration
from .variants import _bilateral_ir


@dataclasses.dataclass
class Figure4Result:
    points: List[ExplorationPoint]
    best: ExplorationPoint
    heuristic_block: Tuple[int, int]
    heuristic_ms: float

    @property
    def heuristic_within(self) -> float:
        """Heuristic time relative to the optimum (1.0 = optimal)."""
        return self.heuristic_ms / self.best.time_ms

    @property
    def spread(self) -> float:
        worst = max(p.time_ms for p in self.points)
        return worst / self.best.time_ms


def figure4_exploration(device: Union[str, DeviceSpec] = "Tesla C2050",
                        backend: str = "cuda",
                        width: int = 4096, height: int = 4096,
                        sigma_d: int = 3, sigma_r: float = 5.0,
                        boundary: Boundary = Boundary.CLAMP,
                        use_mask: bool = True,
                        use_texture: bool = True,
                        workers: Optional[int] = None,
                        use_processes: bool = False) -> Figure4Result:
    """Explore all legal configurations and compare with Algorithm 2.

    *workers* parallelises the candidate walk (see
    :func:`repro.mapping.explore.explore_configurations`).
    """
    dev = get_device(device) if isinstance(device, str) else device
    ir = _bilateral_ir(use_mask, boundary.value, sigma_d, sigma_r)
    window = (4 * sigma_d + 1, 4 * sigma_d + 1)
    resources = estimate_resources(ir, dev, use_texture=use_texture,
                                   border_variants=9)
    task = ExplorationTask(
        device=dev, mix=resources.instruction_mix,
        width=width, height=height, window=window,
        boundary_mode=boundary, backend=backend,
        border=BorderMode.SPECIALIZED, use_texture=use_texture,
        mask_memory=MaskMemory.CONSTANT,
        regs_per_thread=resources.registers_per_thread)
    points = explore_configurations(
        dev, resources.instruction_mix, width, height, window,
        boundary_mode=boundary, backend=backend,
        border=BorderMode.SPECIALIZED, use_texture=use_texture,
        mask_memory=MaskMemory.CONSTANT,
        regs_per_thread=resources.registers_per_thread,
        workers=workers, use_processes=use_processes)
    best = min(points, key=lambda p: p.time_ms)

    selection = select_configuration(
        dev, resources.registers_per_thread,
        border_handling=True, image_size=(width, height), window=window)
    chosen = selection.block
    chosen_points = [p for p in points if p.block == chosen]
    if chosen_points:
        heuristic_ms = chosen_points[0].time_ms
    else:
        # The chosen block was not among the explored points.  This used
        # to silently substitute best.time_ms, so heuristic_within read
        # 1.0 (optimal) exactly when the heuristic had wandered off the
        # explored space — the worst case reported as the best.  Score
        # the chosen block directly instead; a block that cannot launch
        # at all raises LaunchError rather than masquerading as optimal.
        heuristic_ms = evaluate_block(task, chosen).time_ms
    return Figure4Result(
        points=points,
        best=best,
        heuristic_block=chosen,
        heuristic_ms=heuristic_ms,
    )


def figure4_device_sweep(devices: Optional[Sequence[Union[str, DeviceSpec]]]
                         = None,
                         width: int = 4096, height: int = 4096,
                         sigma_d: int = 3, sigma_r: float = 5.0,
                         boundary: Boundary = Boundary.CLAMP,
                         use_texture: bool = True,
                         workers: Optional[int] = None,
                         use_processes: bool = False
                         ) -> Dict[str, List[ExplorationPoint]]:
    """Run the Figure-4 exploration across several devices at once.

    One :class:`~repro.mapping.explore.ExplorationTask` per device, fanned
    out by :func:`~repro.mapping.explore.explore_many` — the chunky
    parallel unit that puts every core to work on multi-device sweeps.
    The backend follows the vendor (CUDA on NVIDIA, OpenCL elsewhere).
    Results are keyed by ``DeviceSpec.name``; passing two devices sharing
    a name raises :class:`ValueError` rather than dropping one silently.
    """
    from ..hwmodel import EVALUATION_DEVICES

    specs = [get_device(d) if isinstance(d, str) else d
             for d in (devices if devices is not None
                       else EVALUATION_DEVICES)]
    names = [dev.name for dev in specs]
    duplicates = sorted({n for n in names if names.count(n) > 1})
    if duplicates:
        raise ValueError(
            f"duplicate device name(s) {duplicates}: results are keyed "
            f"by device name, so duplicates would be silently dropped")
    ir = _bilateral_ir(True, boundary.value, sigma_d, sigma_r)
    window = (4 * sigma_d + 1, 4 * sigma_d + 1)
    tasks = []
    for dev in specs:
        backend = "cuda" if dev.vendor == "NVIDIA" else "opencl"
        resources = estimate_resources(ir, dev, use_texture=use_texture,
                                       border_variants=9)
        tasks.append(ExplorationTask(
            device=dev, mix=resources.instruction_mix,
            width=width, height=height, window=window,
            boundary_mode=boundary, backend=backend,
            border=BorderMode.SPECIALIZED, use_texture=use_texture,
            mask_memory=MaskMemory.CONSTANT,
            regs_per_thread=resources.registers_per_thread))
    results = explore_many(tasks, workers=workers,
                           use_processes=use_processes)
    return {dev.name: pts for dev, pts in zip(specs, results)}
