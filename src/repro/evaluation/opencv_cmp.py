"""The OpenCV separable-filter comparison (Tables VIII/IX).

OpenCV's GPU module implements Gaussian/Sobel as row+column separable
passes that "stage image data to shared memory and utilize precalculated
masks.  In addition, OpenCV maps multiple output pixels to the same thread
... to minimize scheduling overheads and maximize data reuse" — the PPT=8
variant; PPT=1 is the one-to-one mapping.  Boundary handling is inline
(per-pixel conditionals), which is why OpenCV's times vary per mode while
the generated code's stay constant.

Our generated competitors are the non-separable KxK kernel in its Gen /
+Tex / +Smem (CUDA) and Gen / +Img|+Tex / +Lmem (OpenCL) flavours with
nine-region border specialisation.
"""

from __future__ import annotations

import functools
from typing import Dict, List, Tuple, Union

from ..backends.base import BorderMode, MaskMemory
from ..dsl.boundary import Boundary
from ..filters.gaussian import make_gaussian
from ..frontend.parser import parse_kernel
from ..hwmodel.database import get_device
from ..hwmodel.device import DeviceSpec
from ..hwmodel.resources import estimate_resources, smem_tile_bytes
from ..ir.analysis import InstructionMix
from ..ir.typecheck import typecheck_kernel
from ..sim.timing import LaunchSpec, estimate_time
from .variants import CellValue

#: OpenCV's own border interpolation costs (its Mirror/BORDER_REFLECT_101
#: is the slowest mode in Tables VIII/IX, unlike the hand-written CUDA
#: ordering).
OPENCV_BORDER_COSTS = {
    Boundary.CLAMP: 4.0,
    Boundary.REPEAT: 9.5,
    Boundary.MIRROR: 17.0,
    Boundary.CONSTANT: 11.0,
}

#: Boundary-mode columns of Tables VIII/IX (no Undefined column there).
GAUSSIAN_MODES: List[Boundary] = [
    Boundary.CLAMP,
    Boundary.REPEAT,
    Boundary.MIRROR,
    Boundary.CONSTANT,
]


def _separable_pass_mix(taps: int) -> InstructionMix:
    """Instruction mix of one OpenCV separable pass (row or column)."""
    return InstructionMix(
        alu=4.0 * taps,              # FMA + smem read + index
        sfu=0.0,
        global_reads=float(taps),
        mask_reads=float(taps),
        branches=2.0,
        reads_by_accessor={"input": float(taps)},
    )


def opencv_time(device: Union[str, DeviceSpec], size: int, ppt: int,
                mode: Boundary, width: int = 4096,
                height: int = 4096) -> CellValue:
    """Model OpenCV's separable GPU filter: two passes, shared-memory
    staging, inline boundary handling, *ppt* output pixels per thread."""
    dev = get_device(device) if isinstance(device, str) else device
    block = (32, 8)
    mix = _separable_pass_mix(size)
    spec = LaunchSpec(
        device=dev,
        backend="cuda",
        width=width,
        height=height,
        block=block,
        window=(size, 1),
        mix=mix,
        boundary_mode=mode,
        border=BorderMode.INLINE,
        use_texture=False,
        use_smem=True,
        mask_memory=MaskMemory.CONSTANT,
        regs_per_thread=14 + ppt,
        smem_bytes_per_block=smem_tile_bytes(block, (size, 1), 4),
        kernel_launches=2,           # row pass + column pass
        pixels_per_thread=ppt,
        fixed_ops_scale=0.75,        # hand-tuned library prologue
        boundary_cost_table=OPENCV_BORDER_COSTS,
    )
    return estimate_time(spec).total_ms


@functools.lru_cache(maxsize=None)
def _gaussian_ir(size: int, mode_value: str):
    kernel, _, _ = make_gaussian(64, 64, size=size,
                                 boundary=Boundary(mode_value))
    return typecheck_kernel(parse_kernel(kernel))


def generated_gaussian_time(device: Union[str, DeviceSpec], size: int,
                            mode: Boundary, backend: str = "cuda",
                            use_texture: bool = False,
                            use_smem: bool = False,
                            width: int = 4096, height: int = 4096,
                            block: Tuple[int, int] = (32, 4)
                            ) -> CellValue:
    """Model our generated (non-separable) KxK Gaussian."""
    dev = get_device(device) if isinstance(device, str) else device
    ir = _gaussian_ir(size, mode.value)
    window = (size, size)
    smem_bytes = smem_tile_bytes(block, window, 4) if use_smem else 0
    resources = estimate_resources(
        ir, dev, use_texture=use_texture, use_smem=use_smem,
        border_variants=9, smem_bytes=smem_bytes)
    spec = LaunchSpec(
        device=dev,
        backend=backend,
        width=width,
        height=height,
        block=block,
        window=window,
        mix=resources.instruction_mix,
        boundary_mode=mode,
        border=BorderMode.SPECIALIZED,
        use_texture=use_texture,
        use_smem=use_smem,
        mask_memory=MaskMemory.CONSTANT,
        regs_per_thread=resources.registers_per_thread,
        smem_bytes_per_block=smem_bytes,
    )
    return estimate_time(spec).total_ms


def gaussian_table(device: Union[str, DeviceSpec], size: int,
                   width: int = 4096, height: int = 4096
                   ) -> Dict[str, Dict[str, CellValue]]:
    """One Table VIII/IX block (one filter size) on *device*."""
    rows: Dict[str, Dict[str, CellValue]] = {}

    def fill(name, fn):
        rows[name] = {m.value: fn(m) for m in GAUSSIAN_MODES}

    fill("OpenCV: PPT=8",
         lambda m: opencv_time(device, size, 8, m, width, height))
    fill("OpenCV: PPT=1",
         lambda m: opencv_time(device, size, 1, m, width, height))
    fill("CUDA(Gen)",
         lambda m: generated_gaussian_time(device, size, m, "cuda",
                                           width=width, height=height))
    fill("CUDA(+Tex)",
         lambda m: generated_gaussian_time(device, size, m, "cuda",
                                           use_texture=True, width=width,
                                           height=height))
    fill("CUDA(+Smem)",
         lambda m: generated_gaussian_time(device, size, m, "cuda",
                                           use_smem=True, width=width,
                                           height=height))
    fill("OpenCL(Gen)",
         lambda m: generated_gaussian_time(device, size, m, "opencl",
                                           width=width, height=height))
    fill("OpenCL(+Img)",
         lambda m: generated_gaussian_time(device, size, m, "opencl",
                                           use_texture=True, width=width,
                                           height=height))
    fill("OpenCL(+Lmem)",
         lambda m: generated_gaussian_time(device, size, m, "opencl",
                                           use_smem=True, width=width,
                                           height=height))
    return rows
