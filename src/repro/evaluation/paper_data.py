"""The paper's published measurements, transcribed.

Execution times in milliseconds for the bilateral filter (4096x4096,
13x13 window, sigma_d = 3, kernel configuration 128x1) from Tables II-VII,
the Gaussian comparison from Tables VIII/IX, and the Figure 4 anchors.
``"crash"`` and ``"n/a"`` markers appear exactly as published.

Row keys match :mod:`repro.evaluation.variants` variant names; column order
is (Undefined, Clamp, Repeat, Mirror, Constant) for the bilateral tables
and (Clamp, Repeat, Mirror, Constant) for the Gaussian tables.
"""

from __future__ import annotations

from typing import Dict, List, Union

Cell = Union[float, str]

MODE_ORDER: List[str] = ["undefined", "clamp", "repeat", "mirror",
                         "constant"]
GAUSSIAN_MODE_ORDER: List[str] = ["clamp", "repeat", "mirror", "constant"]

# -- Table II: Tesla C2050, CUDA -------------------------------------------
TABLE_II: Dict[str, List[Cell]] = {
    "Manual": ["crash", 302.27, 363.96, 321.81, 568.46],
    "+Tex": [260.03, 285.61, 362.70, 310.61, 520.25],
    "+2DTex": [272.39, 272.40, 300.56, "n/a", "n/a"],
    "+Mask": ["crash", 214.51, 281.89, 225.88, 481.76],
    "+Mask+Tex": [170.79, 192.46, 259.26, 205.29, 425.13],
    "+Mask+2DTex": [181.19, 181.19, 203.13, "n/a", "n/a"],
    "Generated": ["crash", 285.29, 298.29, 289.22, 291.26],
    "Generated+Tex": [276.76, 265.36, 285.57, 278.04, 268.01],
    "Generated+Mask": ["crash", 181.45, 200.66, 193.16, 197.23],
    "Generated+Mask+Tex": [172.60, 182.80, 180.38, 173.59, 175.52],
    "RapidMind": [430.95, 489.94, "crash", "n/a", 539.69],
    "RapidMind+Tex": [456.35, 514.63, "crash", "n/a", 518.49],
}

# -- Table III: Tesla C2050, OpenCL -----------------------------------------
TABLE_III: Dict[str, List[Cell]] = {
    "Manual": [449.86, 485.60, 552.83, 504.39, 505.11],
    "+Img": [465.48, 487.80, 557.88, 501.18, 508.28],
    "+ImgBH": [452.15, 452.39, 464.07, "n/a", 452.24],
    "+Mask": [215.23, 250.67, 331.11, 261.05, 267.62],
    "+Mask+Img": [228.29, 251.51, 322.61, 264.54, 288.08],
    "+Mask+ImgBH": [214.68, 227.74, 215.07, "n/a", 215.07],
    "Generated": [453.78, 466.49, 474.86, 455.59, 467.05],
    "Generated+Img": [463.62, 466.61, 472.67, 468.43, 466.62],
    "Generated+Mask": [217.95, 215.61, 222.78, 220.27, 220.16],
    "Generated+Mask+Img": [219.49, 219.64, 238.81, 220.28, 232.57],
}

# -- Table IV: Quadro FX 5800, CUDA -----------------------------------------
TABLE_IV: Dict[str, List[Cell]] = {
    "Manual": [319.67, 349.32, 394.96, 393.00, 779.68],
    "+Tex": [310.22, 336.46, 369.74, 378.47, 590.18],
    "+2DTex": [330.50, 330.49, 369.06, "n/a", "n/a"],
    "+Mask": [224.56, 321.55, 323.50, 321.46, 778.48],
    "+Mask+Tex": [199.11, 237.60, 271.45, 278.89, 497.75],
    "+Mask+2DTex": [214.53, 215.53, 348.92, "n/a", "n/a"],
    "Generated": [321.24, 331.36, 404.81, 332.17, 436.77],
    "Generated+Tex": [312.71, 313.74, 356.52, 316.08, 383.19],
    "Generated+Mask": [225.58, 227.65, 281.82, 228.18, 290.78],
    "Generated+Mask+Tex": [200.55, 204.45, 218.22, 204.53, 246.96],
    "RapidMind": [737.69, 862.86, 2352.34, "n/a", 989.55],
    "RapidMind+Tex": [679.52, 734.48, 2226.33, "n/a", 805.62],
}

# -- Table V: Quadro FX 5800, OpenCL -----------------------------------------
TABLE_V: Dict[str, List[Cell]] = {
    "Manual": [439.55, 504.79, 537.04, 528.47, 770.34],
    "+Img": [509.95, 529.39, 560.77, 550.43, 732.55],
    "+ImgBH": [509.82, 509.33, 509.38, "n/a", 509.65],
    "+Mask": [355.70, 455.69, 458.90, 452.71, 775.83],
    "+Mask+Img": [468.94, 466.67, 467.19, 464.62, 708.93],
    "+Mask+ImgBH": [468.00, 470.04, 468.80, "n/a", 470.46],
    "Generated": [446.24, 449.67, 514.89, 453.68, 460.68],
    "Generated+Img": [511.38, 512.50, 553.23, 511.78, 654.08],
    "Generated+Mask": [354.93, 357.77, 407.01, 357.72, 384.30],
    "Generated+Mask+Img": [466.26, 465.70, 522.53, 461.56, 539.77],
}

# -- Table VI: Radeon HD 5870, OpenCL ----------------------------------------
TABLE_VI: Dict[str, List[Cell]] = {
    "Manual": [334.96, 408.36, 404.83, 419.59, 440.64],
    "+Img": [353.93, 385.23, 405.81, 396.45, 484.25],
    "+ImgBH": [353.93, 353.91, 353.96, "n/a", 353.95],
    "+Mask": [311.85, 397.40, 434.36, 408.32, 402.59],
    "+Mask+Img": [341.23, 373.93, 400.71, 375.48, 444.36],
    "+Mask+ImgBH": [341.25, 341.24, 341.24, "n/a", 341.27],
    "Generated": [342.67, 354.49, 472.20, 355.57, 351.83],
    "Generated+Img": [372.14, 376.91, 482.28, 382.71, 446.98],
    "Generated+Mask": [326.22, 357.96, 487.53, 359.72, 348.77],
    "Generated+Mask+Img": [350.56, 364.34, 481.76, 364.39, 428.22],
}

# -- Table VII: Radeon HD 6970, OpenCL ---------------------------------------
TABLE_VII: Dict[str, List[Cell]] = {
    "Manual": [286.29, 337.13, 375.11, 346.18, 381.76],
    "+Img": [286.38, 319.20, 364.59, 328.12, 435.16],
    "+ImgBH": [286.44, 286.44, 286.43, "n/a", 286.46],
    "+Mask": [265.57, 332.41, 387.81, 340.59, 349.37],
    "+Mask+Img": [268.26, 310.84, 349.31, 311.42, 387.73],
    "+Mask+ImgBH": [268.20, 268.23, 268.20, "n/a", 268.24],
    "Generated": [291.30, 309.52, 470.90, 322.69, 321.19],
    "Generated+Img": [303.36, 298.50, 465.30, 305.38, 438.74],
    "Generated+Mask": [289.33, 296.20, 467.76, 332.91, 314.05],
    "Generated+Mask+Img": [279.66, 291.49, 474.60, 291.58, 414.31],
}

# -- Table VIII: Gaussian on Tesla C2050 (Clamp, Repeat, Mirror, Const) ------
TABLE_VIII: Dict[int, Dict[str, List[Cell]]] = {
    3: {
        "OpenCV: PPT=8": [5.10, 6.36, 8.09, 6.75],
        "OpenCV: PPT=1": [9.44, 11.85, 15.97, 12.36],
        "CUDA(Gen)": [7.00, 7.53, 7.21, 7.10],
        "CUDA(+Tex)": [7.00, 7.44, 7.17, 7.13],
        "CUDA(+Smem)": [7.73, 8.09, 8.02, 8.00],
        "OpenCL(Gen)": [9.26, 9.70, 9.40, 9.33],
        "OpenCL(+Tex)": [13.41, 13.62, 13.33, 13.16],
        "OpenCL(+Lmem)": [11.29, 11.46, 11.12, 11.13],
    },
    5: {
        "OpenCV: PPT=8": [5.11, 6.36, 8.10, 6.76],
        "OpenCV: PPT=1": [9.45, 11.88, 15.99, 12.37],
        "CUDA(Gen)": [8.84, 9.86, 9.47, 9.45],
        "CUDA(+Tex)": [8.94, 9.72, 9.35, 9.47],
        "CUDA(+Smem)": [9.38, 9.59, 9.44, 9.55],
        "OpenCL(Gen)": [10.88, 11.82, 11.13, 10.44],
        "OpenCL(+Tex)": [14.96, 15.87, 15.17, 15.12],
        "OpenCL(+Lmem)": [13.24, 13.72, 13.35, 13.22],
    },
}

# -- Table IX: Gaussian on Quadro FX 5800 -------------------------------------
TABLE_IX: Dict[int, Dict[str, List[Cell]]] = {
    3: {
        "OpenCV: PPT=8": [4.86, 5.82, 10.46, 6.22],
        "OpenCV: PPT=1": [7.63, 9.22, 20.98, 9.79],
        "CUDA(Gen)": [8.60, 8.63, 8.64, 8.67],
        "CUDA(+Tex)": [8.55, 8.58, 8.60, 8.63],
        "CUDA(+Smem)": [11.83, 11.83, 11.84, 11.90],
        "OpenCL(Gen)": [13.58, 13.47, 13.10, 13.46],
        "OpenCL(+Img)": [15.42, 15.47, 15.06, 15.24],
        "OpenCL(+Lmem)": [17.84, 17.86, 17.91, 18.35],
    },
    5: {
        "OpenCV: PPT=8": [4.90, 5.87, 10.45, 6.22],
        "OpenCV: PPT=1": [7.64, 9.22, 20.98, 9.79],
        "CUDA(Gen)": [9.88, 9.95, 9.95, 10.12],
        "CUDA(+Tex)": [9.91, 9.97, 9.98, 10.20],
        "CUDA(+Smem)": [14.36, 14.36, 14.37, 14.43],
        "OpenCL(Gen)": [16.14, 16.26, 16.18, 16.60],
        "OpenCL(+Img)": [18.38, 18.44, 18.33, 18.65],
        "OpenCL(+Lmem)": [23.61, 23.62, 23.62, 24.13],
    },
}

# -- Figure 4 anchors ----------------------------------------------------------
FIGURE4_OPTIMUM_BLOCK = (32, 6)
FIGURE4_OPTIMUM_MS = 167.94
FIGURE4_WORST_MS = 425.0          # 32-thread outlier mentioned in the text
FIGURE4_RANGE_MS = (160.0, 240.0)  # visible band of the plotted points
FIGURE4_HEURISTIC_WITHIN = 1.10   # "typically within 10% of the best"

#: Section VI-C: generated CUDA kernel is 317 lines from a 16-line DSL
#: description.
GENERATED_KERNEL_LINES = 317
DSL_KERNEL_LINES = 16

ALL_BILATERAL_TABLES = {
    ("Tesla C2050", "cuda"): TABLE_II,
    ("Tesla C2050", "opencl"): TABLE_III,
    ("Quadro FX 5800", "cuda"): TABLE_IV,
    ("Quadro FX 5800", "opencl"): TABLE_V,
    ("Radeon HD 5870", "opencl"): TABLE_VI,
    ("Radeon HD 6970", "opencl"): TABLE_VII,
}

ALL_GAUSSIAN_TABLES = {
    "Tesla C2050": TABLE_VIII,
    "Quadro FX 5800": TABLE_IX,
}


def as_dict(table: Dict[str, List[Cell]],
            modes: List[str] = MODE_ORDER) -> Dict[str, Dict[str, Cell]]:
    """Row-list form -> nested-dict form (variant -> mode -> cell)."""
    return {name: dict(zip(modes, cells)) for name, cells in table.items()}
