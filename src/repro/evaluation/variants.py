"""The bilateral-filter variant matrix of Tables II-VII.

Each table cell is one (implementation variant, boundary mode) pair timed
on one device/backend.  Variants differ in exactly the axes the paper
enumerates:

* *Manual* — straightforward CUDA/OpenCL: per-access boundary conditionals
  (``BorderMode.INLINE``), plain global loads, closeness weights recomputed
  per tap (no Mask);
* *+Tex* / *+Img* — reads through linear textures / image objects;
* *+2DTex* / *+ImgBH* — hardware boundary handling via 2-D texture address
  modes / sampler address modes (only some modes exist: the "n/a" cells);
* *+Mask* — closeness coefficients from constant memory;
* *Generated* — hipacc-py output: nine-region border specialisation;
* *RapidMind* — unspecialised framework code with managed-array overhead;
  its Repeat mode crashes on the Tesla and is ~3x slower elsewhere, as
  measured in the paper.

"crash" and "n/a" cells are reproduced as string markers, driven by the
same mechanisms (memory-protection faults, missing hardware address modes)
— not hard-coded per table.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Dict, List, Optional, Tuple, Union

from ..backends.base import BorderMode, MaskMemory
from ..dsl.boundary import Boundary
from ..errors import LaunchError
from ..filters.bilateral import make_bilateral
from ..frontend.parser import parse_kernel
from ..hwmodel.database import get_device
from ..hwmodel.device import DeviceSpec
from ..hwmodel.resources import estimate_resources
from ..ir.typecheck import typecheck_kernel
from ..sim.timing import LaunchSpec, estimate_time

#: Boundary-mode columns of Tables II-VII, in paper order.
BILATERAL_MODES: List[Boundary] = [
    Boundary.UNDEFINED,
    Boundary.CLAMP,
    Boundary.REPEAT,
    Boundary.MIRROR,
    Boundary.CONSTANT,
]

CellValue = Union[float, str]

#: RapidMind's software Repeat path (measured ~3x in Table IV).
_RAPIDMIND_REPEAT_FACTOR = 2.6

#: hardware address modes available per backend (paper Section VI-A.1)
_HW_MODES = {
    "cuda": {Boundary.CLAMP, Boundary.REPEAT, Boundary.UNDEFINED},
    "opencl": {Boundary.CLAMP, Boundary.REPEAT, Boundary.CONSTANT,
               Boundary.UNDEFINED},
}


@dataclasses.dataclass(frozen=True)
class VariantSpec:
    """One implementation variant (a table row)."""

    name: str
    kind: str                     # "manual" | "generated" | "rapidmind"
    use_mask: bool = False
    use_texture: bool = False
    hardware_border: bool = False
    use_smem: bool = False
    framework_overhead: float = 1.0
    framework_ops_per_read: float = 0.0


def cuda_variants() -> List[VariantSpec]:
    """Rows of Tables II/IV (CUDA backend)."""
    return [
        VariantSpec("Manual", "manual"),
        VariantSpec("+Tex", "manual", use_texture=True),
        VariantSpec("+2DTex", "manual", use_texture=True,
                    hardware_border=True),
        VariantSpec("+Mask", "manual", use_mask=True),
        VariantSpec("+Mask+Tex", "manual", use_mask=True, use_texture=True),
        VariantSpec("+Mask+2DTex", "manual", use_mask=True,
                    use_texture=True, hardware_border=True),
        VariantSpec("Generated", "generated"),
        VariantSpec("Generated+Tex", "generated", use_texture=True),
        VariantSpec("Generated+Mask", "generated", use_mask=True),
        VariantSpec("Generated+Mask+Tex", "generated", use_mask=True,
                    use_texture=True),
        VariantSpec("RapidMind", "rapidmind",
                    framework_overhead=1.45, framework_ops_per_read=1.5),
        VariantSpec("RapidMind+Tex", "rapidmind", use_texture=True,
                    framework_overhead=1.45, framework_ops_per_read=1.5),
    ]


def opencl_variants() -> List[VariantSpec]:
    """Rows of Tables III/V/VI/VII (OpenCL backend)."""
    return [
        VariantSpec("Manual", "manual"),
        VariantSpec("+Img", "manual", use_texture=True),
        VariantSpec("+ImgBH", "manual", use_texture=True,
                    hardware_border=True),
        VariantSpec("+Mask", "manual", use_mask=True),
        VariantSpec("+Mask+Img", "manual", use_mask=True, use_texture=True),
        VariantSpec("+Mask+ImgBH", "manual", use_mask=True,
                    use_texture=True, hardware_border=True),
        VariantSpec("Generated", "generated"),
        VariantSpec("Generated+Img", "generated", use_texture=True),
        VariantSpec("Generated+Mask", "generated", use_mask=True),
        VariantSpec("Generated+Mask+Img", "generated", use_mask=True,
                    use_texture=True),
    ]


@functools.lru_cache(maxsize=None)
def _bilateral_ir(use_mask: bool, mode_value: str, sigma_d: int,
                  sigma_r: float):
    """Parse + typecheck the bilateral kernel once per (mask, mode)."""
    kernel, _, _ = make_bilateral(
        64, 64, sigma_d=sigma_d, sigma_r=sigma_r,
        boundary=Boundary(mode_value), use_mask=use_mask)
    return typecheck_kernel(parse_kernel(kernel))


def _border_mode_for(variant: VariantSpec, mode: Boundary) -> BorderMode:
    if mode == Boundary.UNDEFINED and not variant.hardware_border:
        return BorderMode.NONE
    if variant.hardware_border:
        return BorderMode.HARDWARE
    if variant.kind == "generated":
        return BorderMode.SPECIALIZED
    return BorderMode.INLINE


def evaluate_bilateral_cell(device: Union[str, DeviceSpec],
                            backend: str,
                            variant: VariantSpec,
                            mode: Boundary,
                            width: int = 4096,
                            height: int = 4096,
                            sigma_d: int = 3,
                            sigma_r: float = 5.0,
                            block: Tuple[int, int] = (128, 1)
                            ) -> CellValue:
    """Model one table cell; returns milliseconds or "crash"/"n/a"."""
    dev = get_device(device) if isinstance(device, str) else device

    # hardware boundary handling only exists for some modes
    if variant.hardware_border and mode not in _HW_MODES[backend]:
        return "n/a"

    # undefined boundary handling faults on memory-protected devices when
    # reads go straight to global memory under the CUDA runtime (texture
    # fetches clamp silently; the OpenCL rows of Table III ran fine).
    # RapidMind is exempt: its managed arrays never issue raw
    # out-of-bounds loads (Table II shows it running under Undefined).
    if (mode == Boundary.UNDEFINED and dev.faults_on_oob
            and backend == "cuda" and not variant.use_texture
            and variant.kind != "rapidmind"):
        return "crash"

    # RapidMind's Repeat backend bug crashes on the Tesla (Tables II)
    if (variant.kind == "rapidmind" and mode == Boundary.REPEAT
            and dev.faults_on_oob):
        return "crash"

    # RapidMind has no Mirror boundary mode ("In addition to the boundary
    # handling modes supported in RapidMind, we support also mirroring")
    if variant.kind == "rapidmind" and mode == Boundary.MIRROR:
        return "n/a"

    ir = _bilateral_ir(variant.use_mask, mode.value, sigma_d, sigma_r)
    window = (4 * sigma_d + 1, 4 * sigma_d + 1)
    border = _border_mode_for(variant, mode)

    smem_bytes = 0
    if variant.use_smem:
        from ..hwmodel.resources import smem_tile_bytes
        smem_bytes = smem_tile_bytes(block, window, 4)

    resources = estimate_resources(
        ir, dev,
        use_texture=variant.use_texture,
        use_smem=variant.use_smem,
        border_variants=9 if border == BorderMode.SPECIALIZED else 1,
        smem_bytes=smem_bytes,
    )

    overhead = variant.framework_overhead
    if variant.kind == "rapidmind" and mode == Boundary.REPEAT:
        overhead *= _RAPIDMIND_REPEAT_FACTOR

    spec = LaunchSpec(
        device=dev,
        backend=backend,
        width=width,
        height=height,
        block=block,
        window=window,
        mix=resources.instruction_mix,
        boundary_mode=mode,
        border=border,
        use_texture=variant.use_texture,
        use_smem=variant.use_smem,
        mask_memory=MaskMemory.CONSTANT,
        regs_per_thread=resources.registers_per_thread,
        smem_bytes_per_block=smem_bytes,
        framework_overhead=overhead,
        framework_ops_per_read=variant.framework_ops_per_read,
        # RapidMind routes all bounds handling through its managed-array
        # runtime: a flat per-read cost regardless of mode
        boundary_cost_override=10.0 if variant.kind == "rapidmind"
        else None,
    )
    try:
        return estimate_time(spec).total_ms
    except LaunchError:
        return "crash"


def bilateral_table(device: Union[str, DeviceSpec], backend: str,
                    variants: Optional[List[VariantSpec]] = None,
                    **cell_kwargs
                    ) -> Dict[str, Dict[str, CellValue]]:
    """Full table: variant name -> {mode name -> ms | marker}."""
    if variants is None:
        variants = cuda_variants() if backend == "cuda" \
            else opencl_variants()
    table: Dict[str, Dict[str, CellValue]] = {}
    for variant in variants:
        row: Dict[str, CellValue] = {}
        for mode in BILATERAL_MODES:
            row[mode.value] = evaluate_bilateral_cell(
                device, backend, variant, mode, **cell_kwargs)
        table[variant.name] = row
    return table
