"""Reconstruction of the paper's evaluation section.

* :mod:`repro.evaluation.variants` — the variant matrix of Tables II-VII
  (manual implementations ± texture ± hardware-border ± mask, generated
  code, RapidMind) evaluated through the timing model;
* :mod:`repro.evaluation.opencv_cmp` — the OpenCV separable-filter
  comparison of Tables VIII/IX (PPT=8 / PPT=1);
* :mod:`repro.evaluation.figure4` — the configuration-space exploration;
* :mod:`repro.evaluation.paper_data` — the published numbers, transcribed,
  for paper-vs-model reporting.
"""

from .variants import (  # noqa: F401
    BILATERAL_MODES,
    CellValue,
    VariantSpec,
    bilateral_table,
    cuda_variants,
    evaluate_bilateral_cell,
    opencl_variants,
)
from .opencv_cmp import gaussian_table  # noqa: F401
from .figure4 import figure4_exploration  # noqa: F401
from . import paper_data  # noqa: F401
