"""Boundary-handling region specialisation (paper Section IV-B, Figure 3).

"Special boundary handling mode is added for each border — resulting in nine
different kernel implementations ... the source-to-source compiler creates
one big kernel that hosts all nine implementations, but executes only the
required one depending on the currently processed image region."

A :class:`BorderRegion` names which image sides a block of threads may cross
(none / low / high per axis).  :func:`classify_regions` computes, for a
given grid/block/window geometry, the nine regions with their block-index
ranges; both the code generators (emitting the Listing-8 dispatch) and the
launch simulator (executing region variants) use it, guaranteeing the
printed code and the simulated semantics agree.
"""

from __future__ import annotations

import dataclasses
import enum
import math
from typing import List, Tuple


class Side(enum.Enum):
    """Which side(s) of one axis a region's accesses may cross."""

    NONE = "none"
    LO = "lo"
    HI = "hi"
    BOTH = "both"

    def needs_lo(self) -> bool:
        return self in (Side.LO, Side.BOTH)

    def needs_hi(self) -> bool:
        return self in (Side.HI, Side.BOTH)


#: Canonical label per (side_x, side_y) — matches Figure 3's layout.
_REGION_LABELS = {
    (Side.LO, Side.LO): "TL",
    (Side.NONE, Side.LO): "T",
    (Side.HI, Side.LO): "TR",
    (Side.LO, Side.NONE): "L",
    (Side.NONE, Side.NONE): "NO",
    (Side.HI, Side.NONE): "R",
    (Side.LO, Side.HI): "BL",
    (Side.NONE, Side.HI): "B",
    (Side.HI, Side.HI): "BR",
}


@dataclasses.dataclass(frozen=True)
class BorderRegion:
    """One specialised kernel variant: guarded sides + block-index range.

    Block ranges are half-open: ``bx_lo <= blockIdx.x < bx_hi`` and likewise
    for y.  ``label`` is the goto label used in generated code (``TL_BH``).
    """

    side_x: Side
    side_y: Side
    bx_lo: int
    bx_hi: int
    by_lo: int
    by_hi: int

    @property
    def label(self) -> str:
        return _REGION_LABELS.get((self.side_x, self.side_y), "FULL") + "_BH"

    @property
    def is_interior(self) -> bool:
        return self.side_x == Side.NONE and self.side_y == Side.NONE

    @property
    def num_blocks(self) -> int:
        return max(0, self.bx_hi - self.bx_lo) * max(0, self.by_hi -
                                                     self.by_lo)


@dataclasses.dataclass(frozen=True)
class RegionLayout:
    """Full region decomposition of a launch grid."""

    grid: Tuple[int, int]           # (grid_x, grid_y) in blocks
    block: Tuple[int, int]
    window: Tuple[int, int]
    regions: Tuple[BorderRegion, ...]
    degenerate: bool                # border spans overlap: single BOTH region

    @property
    def total_blocks(self) -> int:
        return self.grid[0] * self.grid[1]

    @property
    def border_blocks(self) -> int:
        return sum(r.num_blocks for r in self.regions
                   if not r.is_interior)

    @property
    def border_block_fraction(self) -> float:
        total = self.total_blocks
        return self.border_blocks / total if total else 0.0


def grid_for(width: int, height: int,
             block: Tuple[int, int]) -> Tuple[int, int]:
    """Launch grid (in blocks) covering a width x height iteration space."""
    bx, by = block
    return (math.ceil(width / bx), math.ceil(height / by))


def border_block_counts(width: int, height: int, block: Tuple[int, int],
                        window: Tuple[int, int]) -> Tuple[int, int, int, int]:
    """(left, right, top, bottom) block counts whose accesses may cross the
    respective image side, given the local-operator *window*."""
    bx, by = block
    half_x, half_y = window[0] // 2, window[1] // 2
    grid_x, grid_y = grid_for(width, height, block)
    left = min(grid_x, math.ceil(half_x / bx)) if half_x else 0
    top = min(grid_y, math.ceil(half_y / by)) if half_y else 0
    # high-side blocks: those whose last pixel + half crosses width-1;
    # the last block may also be partial (grid overshoot), which always
    # needs a high-side guard to stay inside the iteration space.
    right = 0
    for b in range(grid_x - 1, -1, -1):
        if (b + 1) * bx - 1 + half_x >= width or (b + 1) * bx > width:
            right += 1
        else:
            break
    bottom = 0
    for b in range(grid_y - 1, -1, -1):
        if (b + 1) * by - 1 + half_y >= height or (b + 1) * by > height:
            bottom += 1
        else:
            break
    return left, min(right, grid_x), top, min(bottom, grid_y)


def classify_regions(width: int, height: int, block: Tuple[int, int],
                     window: Tuple[int, int]) -> RegionLayout:
    """Decompose the launch grid into boundary-handling regions.

    Returns the nine Figure-3 regions when the low/high border block spans
    do not overlap.  When they do (image narrower than two border spans),
    falls back to a single degenerate region guarding both sides of both
    axes — semantically always correct, just without the interior fast
    path.
    """
    grid_x, grid_y = grid_for(width, height, block)
    left, right, top, bottom = border_block_counts(width, height, block,
                                                   window)

    if left + right > grid_x or top + bottom > grid_y:
        region = BorderRegion(Side.BOTH, Side.BOTH, 0, grid_x, 0, grid_y)
        return RegionLayout((grid_x, grid_y), block, window, (region,), True)

    x_bands = [
        (Side.LO, 0, left),
        (Side.NONE, left, grid_x - right),
        (Side.HI, grid_x - right, grid_x),
    ]
    y_bands = [
        (Side.LO, 0, top),
        (Side.NONE, top, grid_y - bottom),
        (Side.HI, grid_y - bottom, grid_y),
    ]
    regions: List[BorderRegion] = []
    for sy, ylo, yhi in y_bands:
        for sx, xlo, xhi in x_bands:
            region = BorderRegion(sx, sy, xlo, xhi, ylo, yhi)
            if region.num_blocks > 0 or (sx, sy) == (Side.NONE, Side.NONE):
                regions.append(region)
    return RegionLayout((grid_x, grid_y), block, window, tuple(regions),
                        False)


def region_grid_predicate(region: BorderRegion, backend: str) -> str:
    """C predicate (on block indices) selecting *region* — the conditions
    of the Listing-8 dispatch.  Uses the generated constants ``BH_X_LO``
    etc. that the backend defines from the region layout."""
    if backend == "cuda":
        bid_x, bid_y = "blockIdx.x", "blockIdx.y"
    else:
        bid_x, bid_y = "get_group_id(0)", "get_group_id(1)"
    parts = []
    if region.side_x == Side.LO:
        parts.append(f"{bid_x} < BH_X_LO")
    elif region.side_x == Side.HI:
        parts.append(f"{bid_x} >= BH_X_HI")
    elif region.side_x == Side.NONE:
        parts.append(f"{bid_x} >= BH_X_LO && {bid_x} < BH_X_HI")
    if region.side_y == Side.LO:
        parts.append(f"{bid_y} < BH_Y_LO")
    elif region.side_y == Side.HI:
        parts.append(f"{bid_y} >= BH_Y_HI")
    elif region.side_y == Side.NONE:
        parts.append(f"{bid_y} >= BH_Y_LO && {bid_y} < BH_Y_HI")
    if region.side_x == Side.BOTH and region.side_y == Side.BOTH:
        return "1"
    return " && ".join(parts) if parts else "1"


def border_thread_count(width: int, height: int, block: Tuple[int, int],
                        window: Tuple[int, int]) -> int:
    """Number of threads that execute boundary-handling conditionals —
    the quantity Algorithm 2's tiling heuristic minimises."""
    layout = classify_regions(width, height, block, window)
    bx, by = block
    return sum(r.num_blocks for r in layout.regions
               if not r.is_interior) * bx * by
