"""Code generation for global reductions.

Emits the canonical two-stage GPU reduction HIPAcc uses for its global
operators:

* **stage 1** — every block grid-strides over the iteration space
  accumulating into a register, stages the per-thread value into
  scratchpad memory and tree-reduces it; thread 0 writes one partial per
  block;
* **stage 2** — one block tree-reduces the partials to the final scalar.

The user's combine expression is emitted once as a ``REDUCE(a, b)`` macro
so both stages share it — mirroring HIPAcc's generated reductions.
"""

from __future__ import annotations

from typing import List

from ..errors import CodegenError
from ..frontend.reduction import LEFT, RIGHT, ReductionIR
from ..ir.nodes import OutputWrite
from .base import CExprPrinter, CodegenOptions, CStmtPrinter, KernelSource


def _combine_macro(ir: ReductionIR, backend: str) -> str:
    """Emit the combine as a macro; multi-statement bodies become a
    statement-expression-free inline function instead."""
    if len(ir.body) == 1 and isinstance(ir.body[0], OutputWrite):
        printer = CExprPrinter(
            backend,
            lower_read=_no_reads,
            lower_mask=_no_reads,
            param_names={LEFT: "(a)", RIGHT: "(b)"},
        )
        expr = printer.print(ir.body[0].value)
        return f"#define REDUCE(a, b) ({expr})"
    # general case: an inline device function
    qualifier = "__device__ inline" if backend == "cuda" else "inline"
    t = ir.pixel_type.cuda_name if backend == "cuda" \
        else ir.pixel_type.opencl_name
    printer = CExprPrinter(backend, _no_reads, _no_reads,
                           param_names={LEFT: "a", RIGHT: "b"})
    stmts = CStmtPrinter(printer, lower_write=lambda v: f"return {v};")
    lines = [f"{qualifier} {t} reduce_op({t} a, {t} b) {{"]
    lines += stmts.print_body(ir.body, 1)
    lines.append("}")
    lines.append("#define REDUCE(a, b) reduce_op(a, b)")
    return "\n".join(lines)


def _no_reads(name: str, dx: str, dy: str) -> str:
    raise CodegenError(
        "reduction combine functions cannot read accessors or masks")


def generate_reduction(ir: ReductionIR, options: CodegenOptions,
                       block_size: int = 256) -> KernelSource:
    """Generate two-stage reduction source for *ir*."""
    options.validate()
    backend = options.backend
    if block_size & (block_size - 1):
        raise CodegenError("reduction block size must be a power of two")
    t = ir.pixel_type.cuda_name if backend == "cuda" \
        else ir.pixel_type.opencl_name
    entry = f"{ir.name}_reduce"

    lines: List[str] = [
        f"// {ir.name}: generated two-stage global reduction "
        f"({backend} backend)",
        _combine_macro(ir, backend),
        f"#define RED_BS {block_size}",
        "",
    ]
    if backend == "cuda":
        lines += _cuda_stage(entry, t)
    else:
        lines += _opencl_stage(entry, t)
    device_code = "\n".join(lines) + "\n"
    host_code = _host_code(entry, t, backend, block_size)
    return KernelSource(
        entry=entry,
        device_code=device_code,
        host_code=host_code,
        backend=backend,
        options=options,
        smem_bytes=block_size * ir.pixel_type.size,
        num_variants=2,      # stage 1 + stage 2
    )


def _cuda_stage(entry: str, t: str) -> List[str]:
    return [
        f'extern "C" __global__ void {entry}_stage1(const {t} * IN, '
        "int stride, int width, int height, "
        f"{t} * partials) {{",
        f"    __shared__ {t} _sdata[RED_BS];",
        "    const int tid = threadIdx.x;",
        "    int idx = blockIdx.x * RED_BS + tid;",
        "    const int total = width * height;",
        "    const int step = gridDim.x * RED_BS;",
        "    // grid-stride accumulation (first element seeds)",
        f"    {t} acc;",
        "    bool seeded = false;",
        "    while (idx < total) {",
        "        int y = idx / width;",
        "        int x = idx - y * width;",
        f"        {t} v = IN[y * stride + x];",
        "        acc = seeded ? REDUCE(acc, v) : v;",
        "        seeded = true;",
        "        idx += step;",
        "    }",
        "    _sdata[tid] = acc;",
        "    __syncthreads();",
        "    // block tree reduction; inactive lanes hold no element",
        "    int live = min(RED_BS, total - blockIdx.x * RED_BS);",
        "    for (int s = RED_BS / 2; s > 0; s >>= 1) {",
        "        if (tid < s && tid + s < live) {",
        "            _sdata[tid] = REDUCE(_sdata[tid], _sdata[tid + s]);",
        "        }",
        "        __syncthreads();",
        "    }",
        "    if (tid == 0) partials[blockIdx.x] = _sdata[0];",
        "}",
        "",
        f'extern "C" __global__ void {entry}_stage2({t} * partials, '
        "int n) {",
        f"    __shared__ {t} _sdata[RED_BS];",
        "    const int tid = threadIdx.x;",
        "    if (tid < n) _sdata[tid] = partials[tid];",
        "    __syncthreads();",
        "    for (int s = RED_BS / 2; s > 0; s >>= 1) {",
        "        if (tid < s && tid + s < n) {",
        "            _sdata[tid] = REDUCE(_sdata[tid], _sdata[tid + s]);",
        "        }",
        "        __syncthreads();",
        "    }",
        "    if (tid == 0) partials[0] = _sdata[0];",
        "}",
    ]


def _opencl_stage(entry: str, t: str) -> List[str]:
    return [
        f"__kernel void {entry}_stage1(__global const {t} * IN, "
        "int stride, int width, int height, "
        f"__global {t} * partials) {{",
        f"    __local {t} _sdata[RED_BS];",
        "    const int tid = get_local_id(0);",
        "    int idx = get_group_id(0) * RED_BS + tid;",
        "    const int total = width * height;",
        "    const int step = get_num_groups(0) * RED_BS;",
        f"    {t} acc;",
        "    bool seeded = false;",
        "    while (idx < total) {",
        "        int y = idx / width;",
        "        int x = idx - y * width;",
        f"        {t} v = IN[y * stride + x];",
        "        acc = seeded ? REDUCE(acc, v) : v;",
        "        seeded = true;",
        "        idx += step;",
        "    }",
        "    _sdata[tid] = acc;",
        "    barrier(CLK_LOCAL_MEM_FENCE);",
        "    int live = min(RED_BS, total - (int)get_group_id(0) * "
        "RED_BS);",
        "    for (int s = RED_BS / 2; s > 0; s >>= 1) {",
        "        if (tid < s && tid + s < live) {",
        "            _sdata[tid] = REDUCE(_sdata[tid], _sdata[tid + s]);",
        "        }",
        "        barrier(CLK_LOCAL_MEM_FENCE);",
        "    }",
        "    if (tid == 0) partials[get_group_id(0)] = _sdata[0];",
        "}",
        "",
        f"__kernel void {entry}_stage2(__global {t} * partials, int n) {{",
        f"    __local {t} _sdata[RED_BS];",
        "    const int tid = get_local_id(0);",
        "    if (tid < n) _sdata[tid] = partials[tid];",
        "    barrier(CLK_LOCAL_MEM_FENCE);",
        "    for (int s = RED_BS / 2; s > 0; s >>= 1) {",
        "        if (tid < s && tid + s < n) {",
        "            _sdata[tid] = REDUCE(_sdata[tid], _sdata[tid + s]);",
        "        }",
        "        barrier(CLK_LOCAL_MEM_FENCE);",
        "    }",
        "    if (tid == 0) partials[0] = _sdata[0];",
        "}",
    ]


def _host_code(entry: str, t: str, backend: str,
               block_size: int) -> str:
    if backend == "cuda":
        return "\n".join([
            f"// host driver for {entry} (CUDA)",
            f"{t} run_{entry}(const {t} *host_in, int width, "
            "int height) {",
            "    int total = width * height;",
            f"    int blocks = min(1024, (total + {block_size} - 1) / "
            f"{block_size});",
            f"    {t} *dev_in = NULL, *dev_partials = NULL;",
            f"    cudaMalloc(&dev_in, (size_t)total * sizeof({t}));",
            f"    cudaMalloc(&dev_partials, blocks * sizeof({t}));",
            "    cudaMemcpy(dev_in, host_in, "
            f"(size_t)total * sizeof({t}), cudaMemcpyHostToDevice);",
            f"    {entry}_stage1<<<blocks, {block_size}>>>(dev_in, width,"
            " width, height, dev_partials);",
            f"    {entry}_stage2<<<1, {block_size}>>>(dev_partials, "
            "blocks);",
            f"    {t} result;",
            "    cudaMemcpy(&result, dev_partials, "
            f"sizeof({t}), cudaMemcpyDeviceToHost);",
            "    cudaFree(dev_in); cudaFree(dev_partials);",
            "    return result;",
            "}",
        ]) + "\n"
    return "\n".join([
        f"// host driver for {entry} (OpenCL)",
        "// (context/queue setup as in the kernel host files)",
        f"{t} run_{entry}(cl_command_queue queue, cl_kernel stage1, "
        "cl_kernel stage2,",
        "                cl_mem dev_in, cl_mem dev_partials, int width, "
        "int height) {",
        "    int total = width * height;",
        f"    size_t local = {block_size};",
        f"    int blocks = (total + {block_size} - 1) / {block_size};",
        "    if (blocks > 1024) blocks = 1024;",
        "    size_t global1 = (size_t)blocks * local;",
        "    clSetKernelArg(stage1, 0, sizeof(cl_mem), &dev_in);",
        "    clSetKernelArg(stage1, 1, sizeof(int), &width);",
        "    clSetKernelArg(stage1, 2, sizeof(int), &width);",
        "    clSetKernelArg(stage1, 3, sizeof(int), &height);",
        "    clSetKernelArg(stage1, 4, sizeof(cl_mem), &dev_partials);",
        "    clEnqueueNDRangeKernel(queue, stage1, 1, NULL, &global1, "
        "&local, 0, NULL, NULL);",
        "    clSetKernelArg(stage2, 0, sizeof(cl_mem), &dev_partials);",
        "    clSetKernelArg(stage2, 1, sizeof(int), &blocks);",
        "    clEnqueueNDRangeKernel(queue, stage2, 1, NULL, &local, "
        "&local, 0, NULL, NULL);",
        f"    {t} result;",
        "    clEnqueueReadBuffer(queue, dev_partials, CL_TRUE, 0, "
        f"sizeof({t}), &result, 0, NULL, NULL);",
        "    return result;",
        "}",
    ]) + "\n"
