"""Code-generation backends (paper Section IV).

Lower a type-checked kernel IR to CUDA or OpenCL source text, applying the
paper's device-specific transformations: texture/image reads, scratchpad
staging, constant-memory filter masks and nine-region boundary-handling
specialisation.  The functional GPU simulator consumes exactly the same
lowering decisions (:class:`CodegenOptions` + :mod:`repro.backends.border`),
so what we simulate is what we print.
"""

from .base import CodegenOptions, KernelSource, MaskMemory, generate  # noqa: F401
from .border import (  # noqa: F401
    BorderRegion,
    Side,
    classify_regions,
    region_grid_predicate,
)
from .cuda import CudaBackend  # noqa: F401
from .opencl import OpenCLBackend  # noqa: F401
