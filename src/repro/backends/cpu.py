"""CPU backend: C99 + OpenMP code generation.

HIPAcc later grew a CPU target; this backend shows how the paper's
device-specific machinery retargets to one.  The GPU's two-layered
parallelism maps onto OpenMP worksharing, and the nine-region boundary
specialisation becomes *loop splitting*: the interior runs as a tight
``#pragma omp parallel for`` nest with zero conditionals, while eight
border strips run with exactly the side-limited index adjustments the GPU
variants use.  Filter masks become ``static const`` arrays (the CPU's
constant memory is its L1), and the same ``bh_*`` helpers are emitted as
``static inline`` functions.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from ..dsl.boundary import Boundary
from ..errors import CodegenError
from ..ir.nodes import KernelIR
from ..types import FLOAT
from .base import (
    BorderMode,
    CExprPrinter,
    CodegenOptions,
    CStmtPrinter,
    KernelSource,
    c_float_literal,
    prepare_kernel,
)
from .border import BorderRegion, Side, classify_regions
from .emitter import BH_HELPERS


def cpu_common_preamble() -> List[str]:
    """Lines shared by every CPU translation unit: includes, the
    min/max macros and the ``bh_*`` boundary helpers.  Emitted once per
    TU whether it holds one kernel (:meth:`CpuBackend.generate`) or a
    whole graph (``runtime/native_graph.py``)."""
    lines = [
        "#include <math.h>",
        "#include <stdlib.h>",
        "#include <omp.h>",
        "",
        "// CUDA/OpenCL's polymorphic min/max as C99 macros; kernel",
        "// expressions are pure, so double evaluation is safe",
        "#ifndef min",
        "#define min(a, b) ((a) < (b) ? (a) : (b))",
        "#endif",
        "#ifndef max",
        "#define max(a, b) ((a) > (b) ? (a) : (b))",
        "#endif",
        "",
        "// boundary index adjustment helpers",
    ]
    for name, args, body in BH_HELPERS:
        lines.append(f"static inline int {name}({args}) {{ {body} }}")
    return lines


@dataclasses.dataclass
class CpuKernelUnit:
    """The per-kernel portion of a CPU translation unit, split from the
    shared preamble so several kernels can share one TU."""

    name: str
    entry: str
    interp_lines: List[str]
    mask_lines: List[str]
    func_lines: List[str]
    num_variants: int


class CpuBackend:
    """Emits one C function per kernel with split loop nests."""

    backend = "cpu"

    def __init__(self, options: CodegenOptions):
        self.options = options

    # -- lowering hooks ------------------------------------------------------

    def _adjust(self, expr: str, side: Side, mode: Boundary,
                extent: str) -> str:
        if mode in (Boundary.UNDEFINED, Boundary.CONSTANT) \
                or side == Side.NONE:
            return expr
        table = {
            Boundary.CLAMP: ("bh_clamp_lo({e})", "bh_clamp_hi({e}, {n})",
                             "bh_clamp({e}, {n})"),
            Boundary.REPEAT: ("bh_repeat_lo({e}, {n})",
                              "bh_repeat_hi({e}, {n})",
                              "bh_repeat({e}, {n})"),
            Boundary.MIRROR: ("bh_mirror_lo({e})",
                              "bh_mirror_hi({e}, {n})",
                              "bh_mirror({e}, {n})"),
        }
        lo, hi, both = table[mode]
        template = lo if side == Side.LO else \
            hi if side == Side.HI else both
        return template.format(e=expr, n=extent)

    def _lower_read(self, kernel: KernelIR, region: BorderRegion):
        def lower(name: str, dx: str, dy: str) -> str:
            acc = kernel.accessor(name)
            mode = Boundary(acc.boundary_mode)
            ix = f"gid_x + ({dx})"
            iy = f"gid_y + ({dy})"
            if acc.interpolation is not None:
                return (f"_interp_{name}({name}, {name}_stride, "
                        f"{name}_width, {name}_height, {ix}, {iy})")
            if mode == Boundary.UNDEFINED \
                    or self.options.border == BorderMode.NONE:
                return f"{name}[({iy}) * {name}_stride + ({ix})]"
            if mode == Boundary.CONSTANT:
                parts = []
                if region.side_x.needs_lo():
                    parts.append(f"({ix}) < 0")
                if region.side_x.needs_hi():
                    parts.append(f"({ix}) >= {name}_width")
                if region.side_y.needs_lo():
                    parts.append(f"({iy}) < 0")
                if region.side_y.needs_hi():
                    parts.append(f"({iy}) >= {name}_height")
                cx = self._adjust(ix, region.side_x, Boundary.CLAMP,
                                  f"{name}_width")
                cy = self._adjust(iy, region.side_y, Boundary.CLAMP,
                                  f"{name}_height")
                load = f"{name}[({cy}) * {name}_stride + ({cx})]"
                if not parts:
                    return load
                const = c_float_literal(
                    acc.boundary_constant,
                    acc.pixel_type if acc.pixel_type.is_float else None)
                return f"(({' || '.join(parts)}) ? {const} : {load})"
            ax = self._adjust(ix, region.side_x, mode, f"{name}_width")
            ay = self._adjust(iy, region.side_y, mode, f"{name}_height")
            return f"{name}[({ay}) * {name}_stride + ({ax})]"

        return lower

    def _lower_mask(self, kernel: KernelIR):
        def lower(name: str, dx: str, dy: str) -> str:
            mask = kernel.mask(name)
            hx, hy = mask.size[0] // 2, mask.size[1] // 2
            return (f"_const{name}[(({dy}) + {hy}) * {mask.size[0]} "
                    f"+ (({dx}) + {hx})]")

        return lower

    # -- emission -------------------------------------------------------------

    def _mask_lines(self, kernel: KernelIR) -> List[str]:
        lines = []
        for mask in kernel.masks:
            n = mask.size[0] * mask.size[1]
            if mask.coefficients is None:
                lines.append(f"static float _const{mask.name}[{n}];")
                continue
            flat = np.asarray(mask.coefficients).reshape(-1)
            values = ", ".join(
                c_float_literal(float(v),
                                mask.pixel_type
                                if mask.pixel_type.is_float else None)
                for v in flat)
            lines.append(
                f"static const float _const{mask.name}[{n}] = "
                f"{{ {values} }};")
        return lines

    def _interp_lines(self, kernel: KernelIR) -> List[str]:
        lines: List[str] = []
        for acc in kernel.accessors:
            if acc.interpolation is None:
                continue
            t = acc.pixel_type.cuda_name
            name = acc.name
            mode = Boundary(acc.boundary_mode)
            out_w, out_h = acc.out_size

            def sample(xe, ye):
                ax = self._adjust(xe, Side.BOTH, mode, "width")
                ay = self._adjust(ye, Side.BOTH, mode, "height")
                if mode == Boundary.CONSTANT:
                    pred = (f"({xe}) < 0 || ({xe}) >= width || "
                            f"({ye}) < 0 || ({ye}) >= height")
                    const = c_float_literal(acc.boundary_constant, FLOAT)
                    return (f"(({pred}) ? {const} : img[bh_clamp({ye}, "
                            f"height) * stride + bh_clamp({xe}, width)])")
                return f"img[({ay}) * stride + ({ax})]"

            lines += [
                f"static inline {t} _interp_{name}(const {t} * img, "
                f"int stride, int width, int height, int ox, int oy) {{",
                f"    float fx = (ox + 0.5f) * ((float)width / "
                f"{out_w}.0f) - 0.5f;",
                f"    float fy = (oy + 0.5f) * ((float)height / "
                f"{out_h}.0f) - 0.5f;",
            ]
            if acc.interpolation == "nearest":
                lines += [
                    "    int nx = (int)floorf(fx + 0.5f);",
                    "    int ny = (int)floorf(fy + 0.5f);",
                    f"    return {sample('nx', 'ny')};",
                    "}",
                ]
            else:
                lines += [
                    "    int x0 = (int)floorf(fx);",
                    "    int y0 = (int)floorf(fy);",
                    "    float wx = fx - x0, wy = fy - y0;",
                    f"    {t} v00 = {sample('x0', 'y0')};",
                    f"    {t} v10 = {sample('x0 + 1', 'y0')};",
                    f"    {t} v01 = {sample('x0', 'y0 + 1')};",
                    f"    {t} v11 = {sample('x0 + 1', 'y0 + 1')};",
                    "    return (v00 * (1.0f - wx) + v10 * wx) * "
                    "(1.0f - wy) + (v01 * (1.0f - wx) + v11 * wx) * wy;",
                    "}",
                ]
        return lines

    def _signature(self, kernel: KernelIR) -> str:
        out_t = kernel.pixel_type.cuda_name
        args = [f"{out_t} * restrict OUT", "int OUT_stride"]
        for acc in kernel.accessors:
            t = acc.pixel_type.cuda_name
            args.append(f"const {t} * restrict {acc.name}")
            args += [f"int {acc.name}_width", f"int {acc.name}_height",
                     f"int {acc.name}_stride"]
        args += ["int IS_width", "int IS_height",
                 "int IS_offset_x", "int IS_offset_y"]
        for p in kernel.params:
            if not p.baked:
                args.append(f"{p.type.cuda_name} {p.name}")
        return f"void {kernel.name}_cpu({', '.join(args)})"

    def _region_loops(self, kernel: KernelIR, region: BorderRegion,
                      geometry: Tuple[int, int]) -> List[str]:
        """One split loop nest covering *region* (pixel units)."""
        x0, x1 = region.bx_lo, min(region.bx_hi, geometry[0])
        y0, y1 = region.by_lo, min(region.by_hi, geometry[1])
        if x1 <= x0 or y1 <= y0:
            return []
        exprs = CExprPrinter("cuda",
                             lower_read=self._lower_read(kernel, region),
                             lower_mask=self._lower_mask(kernel))
        stmts = CStmtPrinter(
            exprs,
            lower_write=lambda v:
            f"OUT[gid_y * OUT_stride + gid_x] = {v};")
        label = region.label if not region.is_interior else \
            "NO_BH (interior fast path)"
        lines = [
            f"    // region {label}: "
            f"x in {x0}..{x1}-1, y in {y0}..{y1}-1",
        ]
        if region.is_interior:
            lines.append("    #pragma omp parallel for schedule(static)")
        lines += [
            f"    for (int gid_y = IS_offset_y + {y0}; "
            f"gid_y < IS_offset_y + {y1}; ++gid_y) {{",
            f"        for (int gid_x = IS_offset_x + {x0}; "
            f"gid_x < IS_offset_x + {x1}; ++gid_x) {{",
        ]
        lines += stmts.print_body(kernel.body, 3)
        lines += ["        }", "    }"]
        return lines

    def kernel_unit(self, kernel: KernelIR,
                    launch_geometry: Optional[Tuple[int, int]] = None
                    ) -> CpuKernelUnit:
        """Lower one kernel to its TU fragment (no shared preamble)."""
        if launch_geometry is None:
            raise CodegenError(
                "the CPU backend splits loops at compile time and needs "
                "the iteration-space geometry")
        kernel = prepare_kernel(kernel, self.options)
        width, height = launch_geometry
        window = (1, 1)
        for acc in kernel.accessors:
            window = (max(window[0], acc.window[0]),
                      max(window[1], acc.window[1]))
        # block (1,1): regions in exact pixel strips
        layout = classify_regions(width, height, (1, 1), window)

        func_lines = [self._signature(kernel) + " {"]
        # interior first (the hot loop), then border strips
        ordered = sorted(layout.regions,
                         key=lambda r: 0 if r.is_interior else 1)
        for region in ordered:
            func_lines += self._region_loops(kernel, region,
                                             (width, height))
        func_lines.append("}")
        return CpuKernelUnit(
            name=kernel.name,
            entry=f"{kernel.name}_cpu",
            interp_lines=self._interp_lines(kernel),
            mask_lines=self._mask_lines(kernel),
            func_lines=func_lines,
            num_variants=sum(1 for r in layout.regions
                             if r.num_blocks > 0 or r.is_interior),
        )

    def generate(self, kernel: KernelIR,
                 launch_geometry: Optional[Tuple[int, int]] = None
                 ) -> KernelSource:
        unit = self.kernel_unit(kernel, launch_geometry)
        lines: List[str] = [
            f"// {unit.name}: generated by hipacc-py (CPU/OpenMP "
            "backend)",
        ]
        lines += cpu_common_preamble()
        lines += unit.interp_lines
        lines += unit.mask_lines
        lines.append("")
        lines += unit.func_lines
        device_code = "\n".join(lines) + "\n"
        host_code = "\n".join([
            f"// host side for {unit.entry}: plain function call —",
            "// no transfers, no launch; compile with -fopenmp",
        ]) + "\n"
        return KernelSource(
            entry=unit.entry,
            device_code=device_code,
            host_code=host_code,
            backend="cpu",
            options=self.options,
            num_variants=unit.num_variants,
        )
