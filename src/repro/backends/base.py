"""Backend-independent code generation machinery.

* :class:`CodegenOptions` — every device-specific lowering decision the
  paper's compiler makes (texture path, scratchpad staging, constant-memory
  masks, boundary specialisation, block configuration, unrolling...).  The
  GPU simulator consumes the same object, so simulated semantics always
  match printed code.
* :class:`CExprPrinter` — prints kernel IR expressions as C, with pluggable
  lowering hooks for Accessor/Mask reads (each backend and each boundary
  region installs its own hook).
* :func:`generate` — dispatches to the CUDA or OpenCL backend.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import CodegenError
from ..intrinsics import resolve
from ..ir.nodes import (
    AccessorRead,
    Assign,
    BinOp,
    BoolConst,
    Call,
    Cast,
    Expr,
    FloatConst,
    ForRange,
    GidX,
    GidY,
    If,
    IntConst,
    KernelIR,
    MaskRead,
    OutputWrite,
    Select,
    Stmt,
    UnOp,
    VarDecl,
    VarRef,
)
from ..types import BOOL, DOUBLE, FLOAT, ScalarType


class MaskMemory(enum.Enum):
    """Where filter-mask coefficients live in generated code."""

    CONSTANT = "constant"        # __constant__ memory (static or dynamic
    #                              initialisation chosen per Mask)
    GLOBAL = "global"            # plain global buffer (baseline ablation)
    INLINE = "inline"            # folded into the code as literals


class BorderMode(enum.Enum):
    """Boundary-handling code-generation strategy."""

    SPECIALIZED = "specialized"  # nine-region MPMD dispatch (the paper)
    INLINE = "inline"            # per-access conditionals everywhere
    #                              (manual/RapidMind baseline behaviour)
    HARDWARE = "hardware"        # texture/sampler address modes (2DTex)
    NONE = "none"                # no handling (undefined behaviour)


@dataclasses.dataclass
class CodegenOptions:
    """All lowering knobs (defaults = the paper's generated configuration)."""

    backend: str = "cuda"
    use_texture: bool = False
    border: BorderMode = BorderMode.SPECIALIZED
    use_smem: bool = False
    mask_memory: MaskMemory = MaskMemory.CONSTANT
    block: Tuple[int, int] = (128, 1)
    unroll: bool = False
    fold_constants: bool = True
    fast_math: bool = False
    #: emit region-dispatch bounds as #ifndef macros so the exploration
    #: mode can re-set them at JIT time (Section V-D)
    emit_config_macros: bool = False
    pixels_per_thread: int = 1
    #: vector width for the OpenCL backend (Section VIII: "vectorization
    #: for graphics cards from AMD ... performance improves
    #: significantly").  Each work-item computes *vectorize* horizontally
    #: adjacent pixels with floatN arithmetic; interior regions use
    #: vloadN, border regions scalarise the adjusted reads per lane.
    vectorize: int = 1

    def validate(self) -> None:
        if self.backend not in ("cuda", "opencl", "cpu"):
            raise CodegenError(f"unknown backend {self.backend!r}")
        if self.backend == "cpu" and (self.use_texture or self.use_smem
                                      or self.vectorize > 1):
            raise CodegenError(
                "the CPU backend has no texture/scratchpad/floatN paths")
        bx, by = self.block
        if bx < 1 or by < 1:
            raise CodegenError(f"invalid block configuration {self.block}")
        if self.pixels_per_thread < 1:
            raise CodegenError("pixels_per_thread must be >= 1")
        if self.pixels_per_thread > 1 and self.use_smem:
            raise CodegenError(
                "multi-pixel mapping does not support scratchpad staging "
                "(the staged tile assumes a 1:1 thread-to-row mapping)")
        if self.vectorize not in (1, 2, 4, 8, 16):
            raise CodegenError(
                f"vectorize must be an OpenCL vector width, got "
                f"{self.vectorize}")
        if self.vectorize > 1 and self.backend != "opencl":
            raise CodegenError(
                "vectorized code generation targets the OpenCL backend "
                "(AMD VLIW GPUs, Section VIII)")
        if self.vectorize > 1 and self.use_smem:
            raise CodegenError(
                "vectorized code generation does not support scratchpad "
                "staging")
        if self.vectorize > 1 and self.use_texture:
            raise CodegenError(
                "vectorized code generation uses vloadN on buffers, not "
                "image objects")
        if self.border == BorderMode.HARDWARE and not self.use_texture:
            raise CodegenError(
                "hardware boundary handling requires the texture path")


@dataclasses.dataclass
class KernelSource:
    """Result of code generation for one kernel variant."""

    entry: str
    device_code: str
    host_code: str
    backend: str
    options: CodegenOptions
    smem_bytes: int = 0
    texture_refs: Tuple[str, ...] = ()
    constant_symbols: Tuple[str, ...] = ()
    num_variants: int = 1        # boundary-region implementations emitted

    @property
    def device_lines(self) -> int:
        return len(self.device_code.splitlines())

    @property
    def host_lines(self) -> int:
        return len(self.host_code.splitlines())


# --------------------------------------------------------------------------
# C expression printing
# --------------------------------------------------------------------------

_PRECEDENCE = {
    "||": 1, "&&": 2,
    "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}
_UNARY_PRECEDENCE = 11

ReadLowering = Callable[[str, str, str], str]
MaskLowering = Callable[[str, str, str], str]


def c_float_literal(value: float, t: Optional[ScalarType]) -> str:
    """A C literal for *value* with the correct suffix for its type."""
    import math as _math
    if _math.isinf(value):
        return ("INFINITY" if value > 0 else "-INFINITY")
    if _math.isnan(value):
        return "NAN"
    text = repr(float(value))
    if "e" not in text and "." not in text:
        text += ".0"
    if t is None or t == FLOAT:
        return text + "f"
    return text


class CExprPrinter:
    """Prints IR expressions as C for a given backend.

    *lower_read* / *lower_mask* receive ``(name, dx_code, dy_code)`` and
    return the C expression for the access — this is where texture,
    scratchpad, constant-memory and boundary-handling lowering plug in.
    """

    def __init__(self, backend: str, lower_read: ReadLowering,
                 lower_mask: MaskLowering, fast_math: bool = False,
                 param_names: Optional[Dict[str, str]] = None,
                 vector_width: int = 1,
                 vector_vars: Optional[set] = None):
        self.backend = backend
        self.lower_read = lower_read
        self.lower_mask = lower_mask
        self.fast_math = fast_math
        self.param_names = param_names or {}
        self.vector_width = vector_width
        self.vector_vars = vector_vars or set()

    def type_name(self, t: ScalarType) -> str:
        return t.cuda_name if self.backend == "cuda" else t.opencl_name

    def vector_type_name(self, t: ScalarType) -> str:
        """OpenCL floatN/intN spelling for vectorised locals."""
        base = self.type_name(t)
        if self.vector_width > 1 and t != BOOL:
            return f"{base}{self.vector_width}"
        return base

    def is_vector(self, e: Expr) -> bool:
        """Does *e* evaluate to a per-lane vector in vector mode?"""
        if self.vector_width <= 1:
            return False
        if isinstance(e, AccessorRead):
            return True
        if isinstance(e, VarRef):
            return e.name in self.vector_vars
        return any(self.is_vector(c) for c in e.children())

    def print(self, e: Expr, parent_prec: int = 0) -> str:
        if isinstance(e, IntConst):
            return str(e.value)
        if isinstance(e, FloatConst):
            return c_float_literal(e.value, e.type)
        if isinstance(e, BoolConst):
            return "true" if e.value else "false"
        if isinstance(e, VarRef):
            return self.param_names.get(e.name, e.name)
        if isinstance(e, GidX):
            return "gid_x"
        if isinstance(e, GidY):
            return "gid_y"
        if isinstance(e, AccessorRead):
            return self.lower_read(e.accessor, self.print(e.dx),
                                   self.print(e.dy))
        if isinstance(e, MaskRead):
            return self.lower_mask(e.mask, self.print(e.dx),
                                   self.print(e.dy))
        if isinstance(e, UnOp):
            inner = self.print(e.operand, _UNARY_PRECEDENCE)
            if inner.startswith(e.op):
                # avoid "--x" / "++x" (C would parse a pre-decrement)
                inner = f"({inner})"
            return f"{e.op}{inner}"
        if isinstance(e, BinOp):
            prec = _PRECEDENCE[e.op]
            text = (f"{self.print(e.lhs, prec)} {e.op} "
                    f"{self.print(e.rhs, prec + 1)}")
            return f"({text})" if prec < parent_prec else text
        if isinstance(e, Call):
            intr = resolve(e.func)
            operand_type = e.args[0].type if e.args else FLOAT
            name = intr.target_name(self.backend, operand_type or FLOAT)
            if (self.fast_math and self.backend == "cuda"
                    and intr.fast_variant is not None
                    and operand_type != DOUBLE):
                name = intr.fast_variant
            args = ", ".join(self.print(a) for a in e.args)
            return f"{name}({args})"
        if isinstance(e, Cast):
            if e.target == BOOL:
                return f"(bool)({self.print(e.operand)})"
            if self.vector_width > 1 and self.is_vector(e.operand):
                # vector conversions use OpenCL's convert_<type><N>()
                return (f"convert_{self.type_name(e.target)}"
                        f"{self.vector_width}({self.print(e.operand)})")
            return f"({self.type_name(e.target)})({self.print(e.operand)})"
        if isinstance(e, Select):
            text = (f"{self.print(e.cond, 2)} ? {self.print(e.if_true)} : "
                    f"{self.print(e.if_false)}")
            return f"({text})"
        raise CodegenError(f"cannot print expression {type(e).__name__}")


class CStmtPrinter:
    """Prints IR statement bodies as C, delegating expressions to a
    :class:`CExprPrinter` and the output write to *lower_write*."""

    def __init__(self, exprs: CExprPrinter,
                 lower_write: Callable[[str], str]):
        self.exprs = exprs
        self.lower_write = lower_write

    def print_body(self, body: Sequence[Stmt], indent: int) -> List[str]:
        pad = "    " * indent
        lines: List[str] = []
        for s in body:
            if isinstance(s, VarDecl):
                if s.name in self.exprs.vector_vars:
                    t = self.exprs.vector_type_name(s.type or FLOAT)
                else:
                    t = self.exprs.type_name(s.type or FLOAT)
                lines.append(
                    f"{pad}{t} {s.name} = {self.exprs.print(s.init)};")
            elif isinstance(s, Assign):
                lines.append(f"{pad}{s.name} = {self.exprs.print(s.value)};")
            elif isinstance(s, If):
                lines.append(f"{pad}if ({self.exprs.print(s.cond)}) {{")
                lines += self.print_body(s.then_body, indent + 1)
                if s.else_body:
                    lines.append(f"{pad}}} else {{")
                    lines += self.print_body(s.else_body, indent + 1)
                lines.append(f"{pad}}}")
            elif isinstance(s, ForRange):
                start = self.exprs.print(s.start)
                stop = self.exprs.print(s.stop)
                step = self.exprs.print(s.step)
                incr = (f"{s.var} += {step}" if step != "1"
                        else f"++{s.var}")
                lines.append(
                    f"{pad}for (int {s.var} = {start}; {s.var} < {stop}; "
                    f"{incr}) {{")
                lines += self.print_body(s.body, indent + 1)
                lines.append(f"{pad}}}")
            elif isinstance(s, OutputWrite):
                lines.append(
                    f"{pad}{self.lower_write(self.exprs.print(s.value))}")
            else:
                raise CodegenError(
                    f"cannot print statement {type(s).__name__}")
        return lines


def prepare_kernel(kernel: KernelIR, options: CodegenOptions) -> KernelIR:
    """Apply the IR-level optimizations selected by *options*."""
    from ..ir.transforms import propagate_constants, unroll_loops

    result = kernel
    if options.fold_constants:
        fold_masks = options.mask_memory == MaskMemory.INLINE
        result = propagate_constants(result, fold_masks=fold_masks)
    if options.unroll:
        result = unroll_loops(result)
        result = propagate_constants(
            result,
            fold_masks=options.mask_memory == MaskMemory.INLINE)
    return result


def generate(kernel: KernelIR, options: CodegenOptions,
             launch_geometry: Optional[Tuple[int, int]] = None
             ) -> KernelSource:
    """Generate device + host source for *kernel* with *options*.

    *launch_geometry* is the iteration-space (width, height); required for
    the region-dispatch constants unless ``emit_config_macros`` is set.
    """
    options.validate()
    if options.backend == "cuda":
        from .cuda import CudaBackend
        return CudaBackend(options).generate(kernel, launch_geometry)
    if options.backend == "cpu":
        from .cpu import CpuBackend
        return CpuBackend(options).generate(kernel, launch_geometry)
    from .opencl import OpenCLBackend
    return OpenCLBackend(options).generate(kernel, launch_geometry)
