"""Shared kernel-emission skeleton for the CUDA and OpenCL backends.

Implements everything the two targets have in common — thread-index setup,
the nine-region boundary dispatch (Listing 8), scratchpad staging
(Listing 7), boundary index-adjustment helpers, constant-memory masks —
while subclasses supply target syntax (qualifiers, builtins, texture reads,
host API).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..dsl.boundary import Boundary
from ..errors import CodegenError
from ..ir.nodes import (
    AccessorInfo,
    AccessorRead,
    Assign,
    GidX,
    GidY,
    KernelIR,
    MaskInfo,
    VarDecl,
    VarRef,
)
from ..hwmodel.resources import smem_tile_geometry
from ..ir.analysis import analyze_accesses
from ..ir.visitors import iter_all_exprs, walk_stmts
from ..types import ScalarType
from .base import (
    BorderMode,
    CExprPrinter,
    CodegenOptions,
    CStmtPrinter,
    KernelSource,
    MaskMemory,
    c_float_literal,
    prepare_kernel,
)
from .border import (
    BorderRegion,
    RegionLayout,
    Side,
    classify_regions,
    region_grid_predicate,
)

#: Boundary modes hardware address modes can express (paper Section VI-A.1).
HARDWARE_MODES_CUDA = {Boundary.CLAMP, Boundary.REPEAT}
HARDWARE_MODES_OPENCL = {Boundary.CLAMP, Boundary.REPEAT, Boundary.CONSTANT}

#: Index-adjustment helper bodies, shared verbatim by both backends (plain
#: C99).  ``*_lo``/``*_hi`` are the cheap single-side forms used inside
#: specialised border regions; the suffix-less forms handle both sides and
#: arbitrarily far out-of-bounds indices (degenerate layouts).
BH_HELPERS = [
    ("bh_clamp_lo", "int i", "return i < 0 ? 0 : i;"),
    ("bh_clamp_hi", "int i, int n", "return i >= n ? n - 1 : i;"),
    ("bh_clamp", "int i, int n",
     "return i < 0 ? 0 : (i >= n ? n - 1 : i);"),
    ("bh_repeat_lo", "int i, int n", "return i < 0 ? i + n : i;"),
    ("bh_repeat_hi", "int i, int n", "return i >= n ? i - n : i;"),
    ("bh_repeat", "int i, int n",
     "int m = i % n; return m < 0 ? m + n : m;"),
    ("bh_mirror_lo", "int i", "return i < 0 ? -1 - i : i;"),
    ("bh_mirror_hi", "int i, int n",
     "return i >= n ? 2 * n - 1 - i : i;"),
    ("bh_mirror", "int i, int n",
     "int m = i % (2 * n); m = m < 0 ? m + 2 * n : m; "
     "return m < n ? m : 2 * n - 1 - m;"),
]


def infer_vector_vars(kernel: KernelIR) -> set:
    """Locals that carry per-lane (vector) values in vectorised codegen:
    anything data-dependent on an accessor read, to a fixed point."""
    vec: set = set()

    def isv(e) -> bool:
        if isinstance(e, AccessorRead):
            return True
        if isinstance(e, VarRef):
            return e.name in vec
        return any(isv(c) for c in e.children())

    changed = True
    while changed:
        changed = False
        for stmt in walk_stmts(kernel.body):
            if isinstance(stmt, VarDecl):
                if stmt.name not in vec and isv(stmt.init):
                    vec.add(stmt.name)
                    changed = True
            elif isinstance(stmt, Assign):
                if stmt.name not in vec and isv(stmt.value):
                    vec.add(stmt.name)
                    changed = True
    return vec


class KernelEmitter:
    """Base class for target backends; one instance per generate() call."""

    backend: str = ""

    def __init__(self, options: CodegenOptions):
        self.options = options

    # ------------------------------------------------------------------
    # target-specific syntax hooks (subclasses override)
    # ------------------------------------------------------------------

    def device_fn_qualifier(self) -> str:
        raise NotImplementedError

    def kernel_qualifier(self) -> str:
        raise NotImplementedError

    def smem_qualifier(self) -> str:
        raise NotImplementedError

    def sync_statement(self) -> str:
        raise NotImplementedError

    def block_idx(self, axis: int) -> str:
        raise NotImplementedError

    def local_idx(self, axis: int) -> str:
        raise NotImplementedError

    def block_dim(self, axis: int) -> str:
        raise NotImplementedError

    def emit_global_read(self, acc: AccessorInfo, ix: str, iy: str) -> str:
        raise NotImplementedError

    def emit_texture_read(self, acc: AccessorInfo, ix: str, iy: str) -> str:
        raise NotImplementedError

    def emit_hardware_read(self, acc: AccessorInfo, dx: str, dy: str) -> str:
        """Read through hardware boundary handling (2D texture/sampler)."""
        raise NotImplementedError

    def emit_output_write(self, kernel: KernelIR, value: str) -> str:
        raise NotImplementedError

    def kernel_signature(self, kernel: KernelIR) -> str:
        raise NotImplementedError

    def file_preamble(self, kernel: KernelIR) -> List[str]:
        raise NotImplementedError

    def generate_host_code(self, kernel: KernelIR,
                           layout: Optional[RegionLayout]) -> str:
        raise NotImplementedError

    def type_name(self, t: ScalarType) -> str:
        return t.cuda_name if self.backend == "cuda" else t.opencl_name

    def supports_goto(self) -> bool:
        """CUDA C supports the Listing-8 goto dispatch; OpenCL C forbids
        goto, so that backend chains if/else region blocks instead."""
        return self.backend == "cuda"

    # ------------------------------------------------------------------
    # shared machinery
    # ------------------------------------------------------------------

    def entry_name(self, kernel: KernelIR) -> str:
        return f"{kernel.name}_kernel"

    def mask_symbol(self, mask: MaskInfo) -> str:
        return f"_const{mask.name}"

    def _hardware_modes(self):
        return (HARDWARE_MODES_CUDA if self.backend == "cuda"
                else HARDWARE_MODES_OPENCL)

    def _check_hardware_support(self, kernel: KernelIR) -> None:
        supported = self._hardware_modes()
        for acc in kernel.accessors:
            mode = Boundary(acc.boundary_mode)
            if mode == Boundary.UNDEFINED:
                continue
            if mode not in supported:
                raise CodegenError(
                    f"hardware boundary handling on {self.backend} does not "
                    f"support mode {mode.value!r} (accessor {acc.name}); "
                    f"supported: "
                    f"{sorted(m.value for m in supported)}")
            if (self.backend == "opencl" and mode == Boundary.CONSTANT
                    and acc.boundary_constant not in (0.0, 1.0)):
                raise CodegenError(
                    "OpenCL samplers only support constant border values "
                    "0.0 or 1.0")

    # -- boundary index adjustment ------------------------------------

    def _adjust_index(self, expr: str, side: Side, mode: Boundary,
                      extent: str) -> str:
        """Wrap index expression *expr* in the adjustment *mode* requires
        for *side* of one axis."""
        if mode in (Boundary.UNDEFINED, Boundary.CONSTANT):
            return expr  # constant handled by predicate at the read site
        if side == Side.NONE:
            return expr
        table = {
            Boundary.CLAMP: ("bh_clamp_lo({e})", "bh_clamp_hi({e}, {n})",
                             "bh_clamp({e}, {n})"),
            Boundary.REPEAT: ("bh_repeat_lo({e}, {n})",
                              "bh_repeat_hi({e}, {n})",
                              "bh_repeat({e}, {n})"),
            Boundary.MIRROR: ("bh_mirror_lo({e})",
                              "bh_mirror_hi({e}, {n})",
                              "bh_mirror({e}, {n})"),
        }
        lo, hi, both = table[mode]
        if side == Side.LO:
            return lo.format(e=expr, n=extent)
        if side == Side.HI:
            return hi.format(e=expr, n=extent)
        return both.format(e=expr, n=extent)

    def _oob_predicate(self, ix: str, iy: str, region: BorderRegion,
                       acc: AccessorInfo) -> Optional[str]:
        """Out-of-bounds predicate for CONSTANT mode, restricted to the
        sides *region* can actually cross."""
        parts = []
        if region.side_x.needs_lo():
            parts.append(f"({ix}) < 0")
        if region.side_x.needs_hi():
            parts.append(f"({ix}) >= {acc.name}_width")
        if region.side_y.needs_lo():
            parts.append(f"({iy}) < 0")
        if region.side_y.needs_hi():
            parts.append(f"({iy}) >= {acc.name}_height")
        return " || ".join(parts) if parts else None

    def make_read_lowering(self, kernel: KernelIR, region: BorderRegion,
                           smem_accessors: Sequence[str]):
        """Build the AccessorRead lowering hook for one region variant."""

        def lower(name: str, dx: str, dy: str) -> str:
            acc = kernel.accessor(name)
            mode = Boundary(acc.boundary_mode)

            if acc.interpolation is not None:
                if self.options.use_texture:
                    raise CodegenError(
                        "interpolating accessors read linear buffers; "
                        "disable the texture path")
                if self.options.vectorize > 1:
                    raise CodegenError(
                        "interpolating accessors are not supported in "
                        "vectorized kernels")
                return (f"_interp_{name}({name}, {name}_stride, "
                        f"{name}_width, {name}_height, gid_x + ({dx}), "
                        f"gid_y + ({dy}))")

            if self.options.vectorize > 1:
                return self._vector_read(kernel, region, acc, mode, dx, dy)

            if self.options.border == BorderMode.HARDWARE \
                    and mode != Boundary.UNDEFINED:
                return self.emit_hardware_read(acc, dx, dy)

            if name in smem_accessors:
                # Scratchpad reads are pre-adjusted during staging.
                ly = f"{self.local_idx(1)} + ({dy}) + {name}_HALF_Y"
                lx = f"{self.local_idx(0)} + ({dx}) + {name}_HALF_X"
                return f"_smem{name}[{ly}][{lx}]"

            ix = f"gid_x + ({dx})"
            iy = f"gid_y + ({dy})"
            if self.options.border == BorderMode.NONE \
                    or mode == Boundary.UNDEFINED:
                return self._plain_read(acc, ix, iy)

            if mode == Boundary.CONSTANT:
                pred = self._oob_predicate(ix, iy, region, acc)
                # clamp the actual load so the untaken branch cannot fault
                cx = self._adjust_index(ix, region.side_x, Boundary.CLAMP,
                                        f"{name}_width")
                cy = self._adjust_index(iy, region.side_y, Boundary.CLAMP,
                                        f"{name}_height")
                load = self._plain_read(acc, cx, cy)
                if pred is None:
                    return load
                const = c_float_literal(acc.boundary_constant,
                                        acc.pixel_type
                                        if acc.pixel_type.is_float else None)
                return f"(({pred}) ? {const} : {load})"

            ax = self._adjust_index(ix, region.side_x, mode,
                                    f"{name}_width")
            ay = self._adjust_index(iy, region.side_y, mode,
                                    f"{name}_height")
            return self._plain_read(acc, ax, ay)

        return lower

    def _plain_read(self, acc: AccessorInfo, ix: str, iy: str) -> str:
        if self.options.use_texture:
            return self.emit_texture_read(acc, ix, iy)
        return self.emit_global_read(acc, ix, iy)

    def _vector_read(self, kernel: KernelIR, region: BorderRegion,
                     acc, mode: Boundary, dx: str, dy: str) -> str:
        """Vectorised read (OpenCL, Section VIII): contiguous vloadN in
        the interior, per-lane scalarised + boundary-adjusted gathers in
        border regions."""
        vec = self.options.vectorize
        name = acc.name
        t = self.type_name(acc.pixel_type)
        iy = f"gid_y + ({dy})"
        ix = f"gid_x + ({dx})"
        interior = (region.side_x == Side.NONE
                    and region.side_y == Side.NONE
                    and (self.options.border != BorderMode.INLINE)
                    and mode != Boundary.CONSTANT)
        if interior or mode == Boundary.UNDEFINED \
                or self.options.border == BorderMode.NONE:
            return (f"vload{vec}(0, {name} + ({iy}) * {name}_stride "
                    f"+ ({ix}))")
        lanes = []
        for lane in range(vec):
            lx = f"gid_x + ({dx}) + {lane}"
            if mode == Boundary.CONSTANT:
                pred = self._oob_predicate(lx, iy, region, acc)
                cx = self._adjust_index(lx, region.side_x, Boundary.CLAMP,
                                        f"{name}_width")
                cy = self._adjust_index(iy, region.side_y, Boundary.CLAMP,
                                        f"{name}_height")
                load = self.emit_global_read(acc, cx, cy)
                if pred is not None:
                    const = c_float_literal(
                        acc.boundary_constant,
                        acc.pixel_type if acc.pixel_type.is_float
                        else None)
                    load = f"(({pred}) ? {const} : {load})"
                lanes.append(load)
            else:
                ax = self._adjust_index(lx, region.side_x, mode,
                                        f"{name}_width")
                ay = self._adjust_index(iy, region.side_y, mode,
                                        f"{name}_height")
                lanes.append(self.emit_global_read(acc, ax, ay))
        return f"({t}{vec})({', '.join(lanes)})"

    def _check_vectorizable(self, kernel: KernelIR) -> None:
        for e in iter_all_exprs(kernel.body):
            if isinstance(e, (GidX, GidY)):
                raise CodegenError(
                    "vectorized code generation does not support "
                    "x()/y() position queries yet")

    def make_mask_lowering(self, kernel: KernelIR):
        def lower(name: str, dx: str, dy: str) -> str:
            mask = kernel.mask(name)
            hx, hy = mask.size[0] // 2, mask.size[1] // 2
            idx = (f"(({dy}) + {hy}) * {mask.size[0]} + (({dx}) + {hx})")
            if (self.options.mask_memory == MaskMemory.CONSTANT
                    and not self._mask_is_static(mask)
                    and self.backend == "opencl"):
                # dynamically initialised constant memory is a __constant
                # buffer argument in OpenCL (Section IV-C)
                return f"{mask.name}_coeffs[{idx}]"
            if self.options.mask_memory == MaskMemory.GLOBAL:
                return f"{mask.name}_coeffs[{idx}]"
            return f"{self.mask_symbol(mask)}[{idx}]"

        return lower

    def _mask_is_static(self, mask: MaskInfo) -> bool:
        return mask.compile_time_constant and mask.coefficients is not None

    # -- constant-memory mask declarations ------------------------------

    def emit_mask_declarations(self, kernel: KernelIR) -> List[str]:
        lines: List[str] = []
        # INLINE folds constant masks into literals, but reads at
        # non-constant offsets cannot fold; those fall back to constant
        # memory, so the declarations are still required.
        if self.options.mask_memory not in (MaskMemory.CONSTANT,
                                            MaskMemory.INLINE):
            return lines
        for mask in kernel.masks:
            symbol = self.mask_symbol(mask)
            n = mask.size[0] * mask.size[1]
            t = self.type_name(mask.pixel_type)
            if self._mask_is_static(mask):
                import numpy as np
                flat = np.asarray(mask.coefficients).reshape(-1)
                values = ", ".join(
                    c_float_literal(float(v),
                                    mask.pixel_type
                                    if mask.pixel_type.is_float else None)
                    for v in flat)
                lines.append(
                    f"{self.constant_qualifier()} {t} {symbol}[{n}] = "
                    f"{{ {values} }};")
            elif self.backend == "cuda":
                # dynamic: declared only, initialised at run time via
                # cudaMemcpyToSymbol (Section IV-C)
                lines.append(
                    f"{self.constant_qualifier()} {t} {symbol}[{n}];")
            # OpenCL dynamic masks arrive as __constant buffer arguments.
        return lines

    def constant_qualifier(self) -> str:
        raise NotImplementedError

    # -- scratchpad staging ----------------------------------------------

    def smem_staging_lines(self, kernel: KernelIR, region: BorderRegion,
                           acc: AccessorInfo, indent: int) -> List[str]:
        """Emit Listing-7 staging: cooperative load of the block's input
        tile (with halo) into scratchpad memory, then a barrier."""
        pad = "    " * indent
        bx, by = self.options.block
        name = acc.name
        wx, wy = acc.window
        hx, hy = wx // 2, wy // 2
        tile_w, tile_h = smem_tile_geometry((bx, by), (wx, wy))
        mode = Boundary(acc.boundary_mode)

        lines = [
            f"{pad}// stage {name} tile into scratchpad (Listing 7)",
            f"{pad}{self.smem_qualifier()} "
            f"{self.type_name(acc.pixel_type)} "
            f"_smem{name}[{tile_h}][{tile_w}];",
            f"{pad}for (int _sy = {self.local_idx(1)}; _sy < {tile_h}; "
            f"_sy += {self.block_dim(1)}) {{",
            f"{pad}    for (int _sx = {self.local_idx(0)}; _sx < {tile_w}; "
            f"_sx += {self.block_dim(0)}) {{",
            f"{pad}        int _ix = {self.block_idx(0)} * "
            f"{self.block_dim(0)} + _sx - {hx};",
            f"{pad}        int _iy = {self.block_idx(1)} * "
            f"{self.block_dim(1)} + _sy - {hy};",
        ]
        if mode not in (Boundary.UNDEFINED, Boundary.CONSTANT) \
                and self.options.border != BorderMode.NONE:
            ax = self._adjust_index("_ix", region.side_x, mode,
                                    f"{name}_width")
            ay = self._adjust_index("_iy", region.side_y, mode,
                                    f"{name}_height")
            lines.append(f"{pad}        _ix = {ax};")
            lines.append(f"{pad}        _iy = {ay};")
            load = self._plain_read(acc, "_ix", "_iy")
        elif mode == Boundary.CONSTANT \
                and self.options.border != BorderMode.NONE:
            pred = self._oob_predicate("_ix", "_iy", region, acc)
            cx = self._adjust_index("_ix", region.side_x, Boundary.CLAMP,
                                    f"{name}_width")
            cy = self._adjust_index("_iy", region.side_y, Boundary.CLAMP,
                                    f"{name}_height")
            load = self._plain_read(acc, cx, cy)
            if pred is not None:
                const = c_float_literal(acc.boundary_constant,
                                        acc.pixel_type
                                        if acc.pixel_type.is_float else None)
                load = f"(({pred}) ? {const} : {load})"
        else:
            load = self._plain_read(acc, "_ix", "_iy")
        lines += [
            f"{pad}        _smem{name}[_sy][_sx] = {load};",
            f"{pad}    }}",
            f"{pad}}}",
            f"{pad}{self.sync_statement()}",
        ]
        return lines

    # -- region dispatch ---------------------------------------------------

    def effective_block(self) -> Tuple[int, int]:
        """Pixels covered per block: x scales with the vector width, y
        with the pixels-per-thread factor (the OpenCV-style multi-pixel
        mapping, Section VI-A.3)."""
        bx, by = self.options.block
        return (bx * self.options.vectorize,
                by * self.options.pixels_per_thread)

    def _layout(self, kernel: KernelIR,
                launch_geometry: Optional[Tuple[int, int]]
                ) -> Optional[RegionLayout]:
        if launch_geometry is None:
            return None
        window = self._max_window(kernel)
        return classify_regions(launch_geometry[0], launch_geometry[1],
                                self.effective_block(), window)

    @staticmethod
    def _max_window(kernel: KernelIR) -> Tuple[int, int]:
        """Largest accessor window ("In case multiple Accessors are used
        within one kernel, the largest window size specified is taken",
        Section IV-B)."""
        wx, wy = 1, 1
        for acc in kernel.accessors:
            wx = max(wx, acc.window[0])
            wy = max(wy, acc.window[1])
        return (wx, wy)

    def _dispatch_constants(self, layout: Optional[RegionLayout]
                            ) -> List[str]:
        """Region bounds, as macros (exploration mode) or constants."""
        if layout is None or self.options.emit_config_macros:
            defaults = {"BH_X_LO": 1, "BH_X_HI": 1, "BH_Y_LO": 1,
                        "BH_Y_HI": 1}
            if layout is not None:
                defaults = self._layout_bounds(layout)
            lines = []
            for name, value in defaults.items():
                lines += [f"#ifndef {name}",
                          f"#define {name} {value}",
                          "#endif"]
            return lines
        bounds = self._layout_bounds(layout)
        return [f"#define {k} {v}" for k, v in bounds.items()]

    @staticmethod
    def _layout_bounds(layout: RegionLayout) -> Dict[str, int]:
        grid_x, grid_y = layout.grid
        left = right = top = bottom = 0
        for r in layout.regions:
            if r.side_x == Side.LO:
                left = max(left, r.bx_hi)
            if r.side_x == Side.HI:
                right = max(right, grid_x - r.bx_lo)
            if r.side_y == Side.LO:
                top = max(top, r.by_hi)
            if r.side_y == Side.HI:
                bottom = max(bottom, grid_y - r.by_lo)
        return {
            "BH_X_LO": left,
            "BH_X_HI": grid_x - right,
            "BH_Y_LO": top,
            "BH_Y_HI": grid_y - bottom,
        }

    def _regions_to_emit(self, layout: Optional[RegionLayout]
                         ) -> List[BorderRegion]:
        if self.options.border == BorderMode.SPECIALIZED:
            if layout is not None and layout.degenerate:
                return [BorderRegion(Side.BOTH, Side.BOTH, 0, 0, 0, 0)]
            # all nine variants, interior last (Listing 8 falls through
            # to NO_BH)
            combos = [
                (Side.LO, Side.LO), (Side.NONE, Side.LO),
                (Side.HI, Side.LO),
                (Side.LO, Side.NONE), (Side.HI, Side.NONE),
                (Side.LO, Side.HI), (Side.NONE, Side.HI),
                (Side.HI, Side.HI),
                (Side.NONE, Side.NONE),
            ]
            return [BorderRegion(sx, sy, 0, 0, 0, 0) for sx, sy in combos]
        if self.options.border in (BorderMode.INLINE,):
            return [BorderRegion(Side.BOTH, Side.BOTH, 0, 0, 0, 0)]
        # NONE / HARDWARE: single unguarded variant
        return [BorderRegion(Side.NONE, Side.NONE, 0, 0, 0, 0)]

    # -- main entry ---------------------------------------------------------

    def generate(self, kernel: KernelIR,
                 launch_geometry: Optional[Tuple[int, int]] = None
                 ) -> KernelSource:
        if self.options.border == BorderMode.HARDWARE:
            self._check_hardware_support(kernel)
        if self.options.vectorize > 1:
            self._check_vectorizable(kernel)
            if launch_geometry is not None and \
                    launch_geometry[0] % self.options.vectorize:
                raise CodegenError(
                    f"iteration-space width {launch_geometry[0]} is not "
                    f"divisible by the vector width "
                    f"{self.options.vectorize}")
        kernel = prepare_kernel(kernel, self.options)
        accesses = analyze_accesses(kernel)
        for acc in kernel.accessors:
            info = accesses.get(acc.name)
            if info is not None:
                acc.is_read = info.is_read

        layout = self._layout(kernel, launch_geometry)
        regions = self._regions_to_emit(layout)
        smem_accessors = self._smem_accessors(kernel)

        lines: List[str] = []
        lines += self.file_preamble(kernel)
        lines.append("")
        lines += self._bh_helper_lines(kernel)
        lines += self._interp_helper_lines(kernel)
        lines.append("")
        lines += self.emit_mask_declarations(kernel)
        lines += self._dispatch_constants(layout)
        lines.append("")
        lines += self._smem_constants(kernel, smem_accessors)
        lines.append(self.kernel_signature(kernel) + " {")
        lines += self._index_setup(kernel)

        multi = len(regions) > 1
        use_goto = self.supports_goto()
        if multi and use_goto:
            # Listing 8: dispatch to labelled implementations
            for region in regions:
                if region.is_interior:
                    continue
                pred = region_grid_predicate(region, self.backend)
                lines.append(f"    if ({pred}) goto {region.label};")
            lines.append("    goto NO_BH;")
        lines.append("")

        smem_bytes = 0
        if multi and not use_goto:
            # OpenCL C has no goto: the same nine variants as an
            # if / else-if chain (interior as the final else)
            first = True
            for region in regions:
                body_lines, region_smem = self._emit_region(
                    kernel, region, smem_accessors, labelled=False,
                    chained=True)
                smem_bytes = max(smem_bytes, region_smem)
                if region.is_interior:
                    lines.append(f"    else {{  // {region.label}")
                else:
                    pred = region_grid_predicate(region, self.backend)
                    keyword = "if" if first else "else if"
                    lines.append(f"    {keyword} ({pred}) {{  "
                                 f"// {region.label}")
                    first = False
                lines += body_lines
                lines.append("    }")
        else:
            for region in regions:
                body_lines, region_smem = self._emit_region(
                    kernel, region, smem_accessors, labelled=multi)
                smem_bytes = max(smem_bytes, region_smem)
                lines += body_lines
                lines.append("")
            if multi:
                lines.append("_done: return;")
        lines.append("}")

        device_code = "\n".join(lines) + "\n"
        host_code = self.generate_host_code(kernel, layout)
        texture_refs = tuple(
            f"_tex{a.name}" for a in kernel.accessors
            if self.options.use_texture and a.is_read)
        constant_symbols = tuple(
            self.mask_symbol(m) for m in kernel.masks
            if self.options.mask_memory == MaskMemory.CONSTANT)
        return KernelSource(
            entry=self.entry_name(kernel),
            device_code=device_code,
            host_code=host_code,
            backend=self.backend,
            options=self.options,
            smem_bytes=smem_bytes,
            texture_refs=texture_refs,
            constant_symbols=constant_symbols,
            num_variants=len(regions),
        )

    def _smem_accessors(self, kernel: KernelIR) -> List[str]:
        if not self.options.use_smem:
            return []
        return [a.name for a in kernel.accessors
                if a.window != (1, 1)]

    def _smem_constants(self, kernel: KernelIR,
                        smem_accessors: Sequence[str]) -> List[str]:
        lines = []
        for name in smem_accessors:
            acc = kernel.accessor(name)
            lines.append(f"#define {name}_HALF_X {acc.window[0] // 2}")
            lines.append(f"#define {name}_HALF_Y {acc.window[1] // 2}")
        return lines

    def _bh_helper_lines(self, kernel: KernelIR) -> List[str]:
        has_interp = any(a.interpolation is not None
                         for a in kernel.accessors)
        if self.options.border in (BorderMode.NONE, BorderMode.HARDWARE) \
                and not has_interp:
            return []
        needed = has_interp or any(
            Boundary(a.boundary_mode) != Boundary.UNDEFINED
            for a in kernel.accessors)
        if not needed:
            return []
        q = self.device_fn_qualifier()
        lines = ["// boundary index adjustment helpers"]
        for name, args, body in BH_HELPERS:
            lines.append(f"{q} int {name}({args}) {{ {body} }}")
        return lines

    def _interp_helper_lines(self, kernel: KernelIR) -> List[str]:
        """Per-accessor resampling helpers (HIPAcc interpolation modes)."""
        lines: List[str] = []
        floor_fn = "floorf" if self.backend == "cuda" else "floor"
        q = self.device_fn_qualifier()
        for acc in kernel.accessors:
            if acc.interpolation is None:
                continue
            t = self.type_name(acc.pixel_type)
            name = acc.name
            mode = Boundary(acc.boundary_mode)
            out_w, out_h = acc.out_size
            const_t = "const " if self.backend == "cuda" \
                else "__global const "

            def sample(x_expr, y_expr):
                if mode == Boundary.CONSTANT:
                    pred = (f"({x_expr}) < 0 || ({x_expr}) >= width || "
                            f"({y_expr}) < 0 || ({y_expr}) >= height")
                    cx = f"bh_clamp({x_expr}, width)"
                    cy = f"bh_clamp({y_expr}, height)"
                    const = c_float_literal(
                        acc.boundary_constant,
                        acc.pixel_type if acc.pixel_type.is_float
                        else None)
                    return (f"(({pred}) ? {const} : "
                            f"img[({cy}) * stride + ({cx})])")
                ax = self._adjust_index(x_expr, Side.BOTH, mode, "width")
                ay = self._adjust_index(y_expr, Side.BOTH, mode, "height")
                return f"img[({ay}) * stride + ({ax})]"

            lines += [
                f"// resampling accessor {name}: {acc.interpolation} "
                f"interpolation onto {out_w}x{out_h}",
                f"{q} {t} _interp_{name}({const_t}{t} * img, int stride,"
                f" int width, int height, int ox, int oy) {{",
                f"    float fx = (ox + 0.5f) * ((float)width / "
                f"{out_w}.0f) - 0.5f;",
                f"    float fy = (oy + 0.5f) * ((float)height / "
                f"{out_h}.0f) - 0.5f;",
            ]
            if acc.interpolation == "nearest":
                lines += [
                    f"    int nx = (int){floor_fn}(fx + 0.5f);",
                    f"    int ny = (int){floor_fn}(fy + 0.5f);",
                    f"    return {sample('nx', 'ny')};",
                    "}",
                ]
            else:
                lines += [
                    f"    int x0 = (int){floor_fn}(fx);",
                    f"    int y0 = (int){floor_fn}(fy);",
                    "    float wx = fx - x0;",
                    "    float wy = fy - y0;",
                    f"    {t} v00 = {sample('x0', 'y0')};",
                    f"    {t} v10 = {sample('x0 + 1', 'y0')};",
                    f"    {t} v01 = {sample('x0', 'y0 + 1')};",
                    f"    {t} v11 = {sample('x0 + 1', 'y0 + 1')};",
                    "    return (v00 * (1.0f - wx) + v10 * wx) * "
                    "(1.0f - wy)",
                    "         + (v01 * (1.0f - wx) + v11 * wx) * wy;",
                    "}",
                ]
        return lines

    def _index_setup(self, kernel: KernelIR) -> List[str]:
        vec = self.options.vectorize
        ppt = self.options.pixels_per_thread
        if vec > 1:
            x_expr = (f"({self.block_idx(0)} * {self.block_dim(0)} + "
                      f"{self.local_idx(0)}) * {vec} + IS_offset_x")
        else:
            x_expr = (f"{self.block_idx(0)} * {self.block_dim(0)} + "
                      f"{self.local_idx(0)} + IS_offset_x")
        lines = [f"    const int gid_x = {x_expr};"]
        if ppt > 1:
            lines.append(
                f"    const int gid_y_base = ({self.block_idx(1)} * "
                f"{self.block_dim(1)} + {self.local_idx(1)}) * {ppt} "
                f"+ IS_offset_y;")
        else:
            lines.append(
                f"    const int gid_y = {self.block_idx(1)} * "
                f"{self.block_dim(1)} + {self.local_idx(1)} + "
                f"IS_offset_y;")
        return lines

    def _emit_region(self, kernel: KernelIR, region: BorderRegion,
                     smem_accessors: Sequence[str],
                     labelled: bool,
                     chained: bool = False) -> Tuple[List[str], int]:
        lines: List[str] = []
        indent = 1
        if chained:
            pass          # the caller opens the if/else block
        elif labelled:
            lines.append(f"{region.label}: {{")
        else:
            lines.append("    {")

        ppt = self.options.pixels_per_thread

        # iteration-space guard: needed whenever a block may overhang the
        # image (hi-side regions, inline mode, degenerate regions)
        needs_guard = (region.side_x.needs_hi() or region.side_y.needs_hi()
                       or self.options.border in (BorderMode.INLINE,
                                                  BorderMode.HARDWARE,
                                                  BorderMode.NONE))
        if ppt > 1:
            # OpenCV-style multi-pixel mapping: one thread computes ppt
            # vertically adjacent pixels (amortises the thread prologue)
            lines.append(
                f"        for (int _ppt = 0; _ppt < {ppt}; ++_ppt) {{")
            lines.append(
                "        const int gid_y = gid_y_base + _ppt;")
            if needs_guard:
                lines.append(
                    "        if (gid_x >= IS_offset_x + IS_width || "
                    "gid_y >= IS_offset_y + IS_height) continue;")
        elif needs_guard:
            exit_stmt = "goto _done;" if (labelled and not chained) \
                else "return;"
            lines.append(
                "        if (gid_x >= IS_offset_x + IS_width || "
                f"gid_y >= IS_offset_y + IS_height) {exit_stmt}")

        smem_bytes = 0
        for name in smem_accessors:
            acc = kernel.accessor(name)
            lines += self.smem_staging_lines(kernel, region, acc, indent + 1)
            bxx, byy = self.options.block
            tile = ((byy + acc.window[1] - 1)
                    * (bxx + acc.window[0] - 1 + 1)
                    * acc.pixel_type.size)
            smem_bytes += tile

        vector_vars = (infer_vector_vars(kernel)
                       if self.options.vectorize > 1 else set())
        exprs = CExprPrinter(
            self.backend,
            lower_read=self.make_read_lowering(kernel, region,
                                               smem_accessors),
            lower_mask=self.make_mask_lowering(kernel),
            fast_math=self.options.fast_math,
            vector_width=self.options.vectorize,
            vector_vars=vector_vars,
        )
        stmts = CStmtPrinter(
            exprs, lower_write=lambda v: self.emit_output_write(kernel, v))
        lines += stmts.print_body(kernel.body, indent + 1)
        if ppt > 1:
            lines.append("        }")      # close the _ppt loop
        if chained:
            return lines, smem_bytes      # caller closes the block
        if labelled:
            lines.append("    goto _done;")
        lines.append("    }" if not labelled else "}")
        return lines, smem_bytes
