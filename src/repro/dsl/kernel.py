"""Kernel base class (paper Section II, Listing 1).

Users derive from :class:`Kernel`, register accessors in ``__init__`` and
implement :meth:`Kernel.kernel`.  The body is *never executed as Python* —
the compiler frontend parses its source into the kernel IR.  The methods
below (``output``, ``x``, ``y``, ``convolve``) therefore only exist so that
calling them *outside* a kernel body produces a clear error, and so editors
can resolve the names.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from ..errors import DslError
from ..types import TypeLike, as_scalar_type
from .accessor import Accessor
from .iteration_space import IterationSpace


@dataclasses.dataclass
class Uniform:
    """A scalar kernel parameter passed at launch time instead of being
    baked into the generated code as a literal.

    ``self.threshold = Uniform(0.5)`` keeps ``threshold`` as a kernel
    function argument, so the same compiled kernel can be re-launched with a
    different value.  Plain ``int``/``float`` attributes are baked.
    """

    value: object
    type: TypeLike = float

    def __post_init__(self):
        self.type = as_scalar_type(self.type)


class Kernel:
    """Base class for user-defined operators.

    Subclass, call ``super().__init__(iteration_space)``, store Accessors /
    Masks / scalars as attributes, register input accessors with
    :meth:`add_accessor`, and implement :meth:`kernel`.
    """

    def __init__(self, iteration_space: IterationSpace):
        if not isinstance(iteration_space, IterationSpace):
            raise DslError("Kernel requires an IterationSpace")
        self.iteration_space = iteration_space
        self._registered_accessors: List[Accessor] = []

    def add_accessor(self, accessor: Accessor) -> None:
        """Register an input accessor (C++ ``addAccessor``)."""
        if not isinstance(accessor, Accessor):
            raise DslError("add_accessor expects an Accessor")
        if accessor not in self._registered_accessors:
            self._registered_accessors.append(accessor)

    @property
    def accessors(self) -> List[Accessor]:
        return list(self._registered_accessors)

    # -- methods only meaningful inside a kernel body -----------------------

    def kernel(self) -> None:
        """Per-pixel program; must be overridden."""
        raise NotImplementedError(
            f"{type(self).__name__} must implement kernel()")

    def output(self, value=None):
        """Write the output pixel: ``self.output(expr)``."""
        raise DslError("output() may only be used inside kernel()")

    def x(self):
        """Column index of the current pixel within the iteration space."""
        raise DslError("x() may only be used inside kernel()")

    def y(self):
        """Row index of the current pixel within the iteration space."""
        raise DslError("y() may only be used inside kernel()")

    def convolve(self, mask, reduce_mode, fn):
        """Reduce ``fn()`` over the mask window (paper Section VIII)."""
        raise DslError("convolve() may only be used inside kernel()")

    # -- convenience: compile + run on the simulator ------------------------

    def execute(self, device: Optional[str] = None, backend: str = "cuda",
                **options):
        """Compile this kernel and execute it on the simulated *device*.

        Mirrors ``BF.execute()`` from Listing 2.  Returns the
        :class:`~repro.runtime.program.LaunchResult` (timing and
        configuration); the output lands in the iteration space's image.
        """
        from ..runtime.compile import compile_kernel

        compiled = compile_kernel(self, backend=backend, device=device,
                                  **options)
        return compiled.execute()
