"""Accessor: the access metadata (paper Sections II and III-A).

An Accessor describes *how* a kernel sees an input image.  It holds no pixel
memory.  Constructed on a plain :class:`Image` it performs no boundary
handling (mode Undefined); constructed on a :class:`BoundaryCondition` it
carries that mode and window.  "Tying the boundary handling mode to an
Accessor instead of an Image has the additional benefit that multiple
boundary handling modes can be defined on the same image."
"""

from __future__ import annotations

from typing import Tuple, Union

import numpy as np

from ..errors import DslError
from .boundary import (
    Boundary,
    BoundaryCondition,
    adjust_indices,
    out_of_bounds_mask,
)
from .image import Image


class Accessor:
    """View of an input Image, optionally through a BoundaryCondition."""

    def __init__(self, source: Union[Image, BoundaryCondition]):
        if isinstance(source, BoundaryCondition):
            self.image = source.image
            self.bc: BoundaryCondition = source
        elif isinstance(source, Image):
            self.image = source
            self.bc = None
        else:
            raise DslError(
                "Accessor requires an Image or a BoundaryCondition, got "
                f"{type(source).__name__}")

    @property
    def boundary_mode(self) -> Boundary:
        return self.bc.mode if self.bc is not None else Boundary.UNDEFINED

    @property
    def boundary_constant(self) -> float:
        return self.bc.constant if self.bc is not None else 0.0

    @property
    def window(self) -> Tuple[int, int]:
        """Declared local-operator window (1x1 when no BoundaryCondition)."""
        return self.bc.window if self.bc is not None else (1, 1)

    @property
    def pixel_type(self):
        return self.image.pixel_type

    # -- simulator-side sampling -------------------------------------------

    def sample(self, ix, iy) -> np.ndarray:
        """Read pixels at absolute indices applying this accessor's
        boundary handling.  Used by the functional simulator and golden
        tests; semantics identical to the index adjustment the generated
        device code performs.

        For UNDEFINED, out-of-bounds reads raise — this is how the simulated
        Tesla C2050 "crash" manifests (callers catch and convert it).
        """
        img = self.image
        ix = np.asarray(ix)
        iy = np.asarray(iy)
        mode = self.boundary_mode
        if mode == Boundary.UNDEFINED:
            oob = out_of_bounds_mask(ix, iy, img.width, img.height)
            if np.any(oob):
                raise IndexError(
                    f"undefined boundary handling: access outside "
                    f"{img.width}x{img.height}")
            return img.pixels[iy, ix]
        if mode == Boundary.CONSTANT:
            oob = out_of_bounds_mask(ix, iy, img.width, img.height)
            cx = np.clip(ix, 0, img.width - 1)
            cy = np.clip(iy, 0, img.height - 1)
            values = img.pixels[cy, cx]
            const = img.pixel_type.np_dtype.type(self.boundary_constant)
            return np.where(oob, const, values)
        ax, ay = adjust_indices(ix, iy, img.width, img.height, mode)
        return img.pixels[ay, ax]

    # The parser intercepts calls like ``self.input(dx, dy)`` inside a
    # kernel body; calling an Accessor outside a kernel is an error that
    # would otherwise fail confusingly, so give it a clear message.
    def __call__(self, *args):
        raise DslError(
            "Accessor objects are only callable inside a Kernel.kernel() "
            "body, where the compiler translates the call into a pixel read")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Accessor({self.image.name}, mode="
                f"{self.boundary_mode.value}, window={self.window})")
