"""Mask: constant filter-mask coefficients (paper Section III-B).

"A Mask holds the precalculated values used by the convolution filter
function.  Since the filter mask is constant for one kernel, this allows the
source-to-source compiler to apply optimizations such as constant
propagation."  Masks land in ``__constant__`` memory; when the coefficients
are known at compile time the backend emits a statically initialised array,
otherwise a dynamically initialised one (Section IV-C).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import DslError
from ..types import TypeLike, as_scalar_type


class Mask:
    """A ``size_x x size_y`` coefficient window centred at (0, 0).

    Window sizes must be odd.  Assign coefficients with :meth:`set` (the
    C++ ``operator=`` of Listing 4).  ``compile_time_constant`` controls
    static vs. dynamic constant-memory initialisation in generated code.
    """

    _counter = 0

    def __init__(self, size_x: int, size_y: Optional[int] = None,
                 pixel_type: TypeLike = float,
                 compile_time_constant: bool = True,
                 name: Optional[str] = None):
        size_y = size_x if size_y is None else size_y
        for label, size in (("x", size_x), ("y", size_y)):
            if size < 1 or size % 2 == 0:
                raise DslError(
                    f"mask size_{label} must be odd and positive, got "
                    f"{size}")
        self.size_x = int(size_x)
        self.size_y = int(size_y)
        self.pixel_type = as_scalar_type(pixel_type)
        self.compile_time_constant = bool(compile_time_constant)
        Mask._counter += 1
        self.name = name or f"mask{Mask._counter}"
        self._coefficients: Optional[np.ndarray] = None

    def set(self, values) -> "Mask":
        """Assign coefficients; accepts a flat or (size_y, size_x) array."""
        arr = np.asarray(values, dtype=self.pixel_type.np_dtype)
        if arr.ndim == 1:
            if arr.size != self.size_x * self.size_y:
                raise DslError(
                    f"mask expects {self.size_x * self.size_y} "
                    f"coefficients, got {arr.size}")
            arr = arr.reshape(self.size_y, self.size_x)
        elif arr.shape != (self.size_y, self.size_x):
            raise DslError(
                f"mask expects shape ({self.size_y}, {self.size_x}), got "
                f"{arr.shape}")
        self._coefficients = arr.copy()
        return self

    @property
    def coefficients(self) -> np.ndarray:
        if self._coefficients is None:
            raise DslError(
                f"mask {self.name!r} has no coefficients assigned; call "
                f"Mask.set(...) before compiling the kernel")
        return self._coefficients

    @property
    def is_set(self) -> bool:
        return self._coefficients is not None

    @property
    def size(self) -> Tuple[int, int]:
        return (self.size_x, self.size_y)

    @property
    def half(self) -> Tuple[int, int]:
        return (self.size_x // 2, self.size_y // 2)

    def at(self, dx: int, dy: int):
        """Coefficient at centre-relative offset (host-side helper)."""
        hx, hy = self.half
        return self.coefficients[dy + hy, dx + hx]

    def __call__(self, *args):
        raise DslError(
            "Mask objects are only callable inside a Kernel.kernel() body")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Mask({self.name!r}, {self.size_x}x{self.size_y})"


def gaussian_mask(size: int, sigma: Optional[float] = None) -> Mask:
    """Convenience constructor: normalised 2-D Gaussian coefficients."""
    if sigma is None:
        sigma = size / 4.0
    half = size // 2
    ax = np.arange(-half, half + 1, dtype=np.float64)
    g1 = np.exp(-0.5 * (ax / sigma) ** 2)
    g2 = np.outer(g1, g1)
    g2 /= g2.sum()
    return Mask(size, size).set(g2)
