"""Domain: a boolean iteration mask for ``convolve()``.

HIPAcc's Domain restricts which taps of a local operator's window are
visited — e.g. a cross-shaped Laplacian or a circular structuring element.
Because the enabled offsets are compile-time constants, ``convolve()``
over a Domain expands into straight-line code containing *only* the
enabled taps: disabled positions cost nothing, in generated code and in
the timing model alike.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..errors import DslError


class Domain:
    """An odd-sized boolean window centred at (0, 0).

    All taps start enabled.  Configure with :meth:`set_enabled` (full
    array) or :meth:`disable` (single offsets).
    """

    _counter = 0

    def __init__(self, size_x: int, size_y: Optional[int] = None,
                 name: Optional[str] = None):
        size_y = size_x if size_y is None else size_y
        for label, size in (("x", size_x), ("y", size_y)):
            if size < 1 or size % 2 == 0:
                raise DslError(
                    f"domain size_{label} must be odd and positive, got "
                    f"{size}")
        self.size_x = int(size_x)
        self.size_y = int(size_y)
        Domain._counter += 1
        self.name = name or f"dom{Domain._counter}"
        self._enabled = np.ones((self.size_y, self.size_x), dtype=bool)

    @property
    def size(self) -> Tuple[int, int]:
        return (self.size_x, self.size_y)

    @property
    def half(self) -> Tuple[int, int]:
        return (self.size_x // 2, self.size_y // 2)

    def set_enabled(self, values) -> "Domain":
        arr = np.asarray(values, dtype=bool)
        if arr.shape != (self.size_y, self.size_x):
            raise DslError(
                f"domain expects shape ({self.size_y}, {self.size_x}), "
                f"got {arr.shape}")
        if not arr.any():
            raise DslError("domain must enable at least one tap")
        self._enabled = arr.copy()
        return self

    def disable(self, dx: int, dy: int) -> "Domain":
        hx, hy = self.half
        if not (-hx <= dx <= hx and -hy <= dy <= hy):
            raise DslError(f"offset ({dx}, {dy}) outside the domain")
        self._enabled[dy + hy, dx + hx] = False
        if not self._enabled.any():
            raise DslError("domain must enable at least one tap")
        return self

    def enabled_offsets(self) -> List[Tuple[int, int]]:
        """Centre-relative (dx, dy) of every enabled tap, row-major."""
        hx, hy = self.half
        ys, xs = np.nonzero(self._enabled)
        return [(int(x) - hx, int(y) - hy) for y, x in zip(ys, xs)]

    def is_enabled(self, dx: int, dy: int) -> bool:
        hx, hy = self.half
        return bool(self._enabled[dy + hy, dx + hx])

    def __call__(self, *args):
        raise DslError(
            "Domain objects are only usable inside convolve() in a "
            "Kernel.kernel() body")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Domain({self.name!r}, {self.size_x}x{self.size_y}, "
                f"{int(self._enabled.sum())} taps)")


def cross_domain(size: int) -> Domain:
    """Plus-shaped domain (the 4-connected Laplacian stencil shape)."""
    dom = Domain(size, size)
    enabled = np.zeros((size, size), dtype=bool)
    enabled[size // 2, :] = True
    enabled[:, size // 2] = True
    return dom.set_enabled(enabled)


def disk_domain(size: int) -> Domain:
    """Circular structuring element inscribed in the window."""
    dom = Domain(size, size)
    half = size // 2
    yy, xx = np.mgrid[-half:half + 1, -half:half + 1]
    return dom.set_enabled(xx * xx + yy * yy <= half * half)
