"""Math functions usable inside kernel bodies.

The compiler resolves calls *by name* against the intrinsic registry
(:mod:`repro.intrinsics`), so importing these is not required for
compilation — but importing them keeps kernel bodies valid, runnable Python
(each function is a thin NumPy wrapper), which is handy for debugging a
kernel outside the compiler.

Both plain (``exp``) and CUDA-style suffixed (``expf``) spellings exist,
mirroring the paper's function-mapping table (Section V-A).
"""

from __future__ import annotations

import numpy as _np

from ..intrinsics import INTRINSICS as _INTRINSICS

__all__ = []


def _make(intr):
    def fn(*args):
        result = intr.np_func(*args)
        if isinstance(result, _np.generic):
            return result.item()
        return result
    fn.__name__ = intr.name
    fn.__doc__ = (f"{intr.name}: kernel math intrinsic "
                  f"(CUDA: {intr.cuda_f32}, OpenCL: {intr.opencl})")
    return fn


for _name, _intr in _INTRINSICS.items():
    _fn = _make(_intr)
    globals()[_name] = _fn
    __all__.append(_name)
    _suffixed = _name + "f"
    if _suffixed not in globals():
        globals()[_suffixed] = _fn
        __all__.append(_suffixed)
