"""Boundary handling modes and their index-adjustment semantics.

The paper's Table I defines five modes (Undefined, Repeat, Clamp, Mirror,
Constant); Figure 2 visualises them.  HIPAcc implements boundary handling by
*adjusting the index* of the accessed pixel to one inside the image
(Section III-A, approach b).  :func:`adjust_indices` is the authoritative
NumPy implementation of those index formulas; the CUDA/OpenCL backends print
the same formulas in C, and a property-based test pins them to the
equivalent ``np.pad`` modes (clamp = "edge", mirror = "symmetric",
repeat = "wrap").
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

import numpy as np

from ..errors import DslError


class Boundary(enum.Enum):
    """Out-of-bounds behaviour for an :class:`Accessor` (paper Table I)."""

    UNDEFINED = "undefined"
    REPEAT = "repeat"
    CLAMP = "clamp"
    MIRROR = "mirror"
    CONSTANT = "constant"

    @classmethod
    def coerce(cls, value) -> "Boundary":
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls(value.lower())
            except ValueError:
                pass
        raise DslError(f"unknown boundary mode: {value!r}")


#: np.pad mode equivalent for every handled mode (None = not expressible).
NUMPY_PAD_MODE = {
    Boundary.CLAMP: "edge",
    Boundary.MIRROR: "symmetric",
    Boundary.REPEAT: "wrap",
    Boundary.CONSTANT: "constant",
}


def _clamp_axis(idx: np.ndarray, n: int) -> np.ndarray:
    return np.clip(idx, 0, n - 1)


def _repeat_axis(idx: np.ndarray, n: int) -> np.ndarray:
    return np.mod(idx, n)


def _mirror_axis(idx: np.ndarray, n: int) -> np.ndarray:
    """Symmetric mirroring *including* the edge pixel (Figure 2d):
    index -1 maps to 0, -2 to 1, n to n-1, n+1 to n-2...

    The folding period is 2n; this is exact for arbitrarily far
    out-of-bounds indices, matching ``np.pad(mode="symmetric")``.
    """
    period = 2 * n
    m = np.mod(idx, period)
    return np.where(m < n, m, period - 1 - m)


def adjust_indices(ix, iy, width: int, height: int,
                   mode: Boundary) -> Tuple[np.ndarray, np.ndarray]:
    """Map (possibly out-of-bounds) pixel indices into the image.

    *ix*, *iy* are integer scalars or arrays.  For :data:`Boundary.CONSTANT`
    and :data:`Boundary.UNDEFINED` the indices are returned unchanged — the
    caller must handle the out-of-bounds mask itself (constant substitution
    or fault detection respectively).
    """
    ix = np.asarray(ix)
    iy = np.asarray(iy)
    if mode == Boundary.CLAMP:
        return _clamp_axis(ix, width), _clamp_axis(iy, height)
    if mode == Boundary.REPEAT:
        return _repeat_axis(ix, width), _repeat_axis(iy, height)
    if mode == Boundary.MIRROR:
        return _mirror_axis(ix, width), _mirror_axis(iy, height)
    if mode in (Boundary.CONSTANT, Boundary.UNDEFINED):
        return ix, iy
    raise DslError(f"unhandled boundary mode {mode}")


def out_of_bounds_mask(ix, iy, width: int, height: int) -> np.ndarray:
    """Boolean mask of indices lying outside the image."""
    ix = np.asarray(ix)
    iy = np.asarray(iy)
    return (ix < 0) | (ix >= width) | (iy < 0) | (iy >= height)


class BoundaryCondition:
    """Ties a boundary mode and a local-operator window to an Image.

    Matches the paper's ``BoundaryCondition<float> BcIn(IN, size_x, size_y,
    BOUNDARY_CLAMP)`` (Listing 3).  Window sizes must be odd — local
    operators are centred ("implies a window size (2m+1) x (2n+1) ... to be
    uneven", Section III).  No pixel data is held here; an Accessor defines
    the view.
    """

    def __init__(self, image, size_x: int, size_y: Optional[int] = None,
                 mode=Boundary.CLAMP, constant: float = 0.0):
        from .image import Image
        if not isinstance(image, Image):
            raise DslError("BoundaryCondition requires an Image")
        size_y = size_x if size_y is None else size_y
        for label, size in (("x", size_x), ("y", size_y)):
            if size < 1 or size % 2 == 0:
                raise DslError(
                    f"window size_{label} must be odd and positive, got "
                    f"{size}")
        mode = Boundary.coerce(mode)
        if mode == Boundary.CONSTANT and constant is None:
            raise DslError("CONSTANT boundary mode requires a constant value")
        self.image = image
        self.size_x = int(size_x)
        self.size_y = int(size_y)
        self.mode = mode
        self.constant = constant

    @property
    def window(self) -> Tuple[int, int]:
        return (self.size_x, self.size_y)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BoundaryCondition({self.image!r}, {self.size_x}x"
                f"{self.size_y}, {self.mode.value})")
