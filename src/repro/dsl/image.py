"""The Image class: typed 2-D pixel storage (paper Section II).

Data is held in a NumPy array, optionally with a padded row *stride* — the
device-specific global-memory padding HIPAcc applies for coalescing ("global
memory padding for memory coalescing and optimal memory bandwidth
utilization", Section II).  The logical image is always ``data[:, :width]``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import DslError
from ..types import TypeLike, as_scalar_type


class Image:
    """A ``width x height`` image of a scalar pixel type.

    Assigning a NumPy array (``img.set_data(a)`` — the C++ ``operator=``)
    copies pixel data in; ``get_data()`` copies it out, mirroring the
    host<->device transfers of Listing 2.
    """

    _counter = 0

    def __init__(self, width: int, height: int, pixel_type: TypeLike = float,
                 name: Optional[str] = None):
        if width < 1 or height < 1:
            raise DslError(f"invalid image size {width}x{height}")
        self.width = int(width)
        self.height = int(height)
        self.pixel_type = as_scalar_type(pixel_type)
        Image._counter += 1
        self.name = name or f"img{Image._counter}"
        self._stride = self.width
        self._data = np.zeros((self.height, self._stride),
                              dtype=self.pixel_type.np_dtype)

    # -- host <-> device transfer ------------------------------------------

    def set_data(self, array) -> "Image":
        """Copy *array* (height x width) into the image (``operator=``)."""
        array = np.asarray(array)
        if array.shape != (self.height, self.width):
            raise DslError(
                f"data shape {array.shape} does not match image "
                f"{self.height}x{self.width}")
        self._data[:, :self.width] = array.astype(self.pixel_type.np_dtype,
                                                  copy=False)
        return self

    def get_data(self) -> np.ndarray:
        """Copy pixel data out (the C++ ``getData()``)."""
        return self._data[:, :self.width].copy()

    # -- internal views used by the simulator ------------------------------

    @property
    def pixels(self) -> np.ndarray:
        """Writable logical view (no padding columns), used internally."""
        return self._data[:, :self.width]

    @property
    def stride(self) -> int:
        """Row pitch in elements (>= width when padded for coalescing)."""
        return self._stride

    def apply_padding(self, alignment_elems: int) -> int:
        """Pad the row stride up to a multiple of *alignment_elems*.

        Returns the new stride.  Existing pixel data is preserved.  This is
        the device-specific memory padding the runtime applies when an image
        is bound to a device.
        """
        if alignment_elems < 1:
            raise DslError("alignment must be positive")
        new_stride = -(-self.width // alignment_elems) * alignment_elems
        if new_stride != self._stride:
            fresh = np.zeros((self.height, new_stride),
                             dtype=self.pixel_type.np_dtype)
            fresh[:, :self.width] = self._data[:, :self.width]
            self._data = fresh
            self._stride = new_stride
        return self._stride

    @property
    def bytes(self) -> int:
        """Allocated size in bytes (including padding)."""
        return self._data.nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Image({self.name!r}, {self.width}x{self.height}, "
                f"{self.pixel_type.name})")
