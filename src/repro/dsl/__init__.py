"""The HIPAcc-style embedded DSL (paper Sections II and III).

Public classes mirror the C++ framework one-to-one:

* :class:`Image` — pixel storage,
* :class:`IterationSpace` — region of interest in the output image,
* :class:`Accessor` — how a kernel sees an input image,
* :class:`BoundaryCondition` / :class:`Boundary` — out-of-bounds behaviour,
* :class:`Mask` — constant filter-mask coefficients,
* :class:`Kernel` — base class users derive their operators from,
* :class:`Uniform` — a scalar parameter kept as a runtime kernel argument,
* :func:`reduce_identity` and the ``convolve`` helpers — the lambda-based
  convolution syntax from the paper's outlook (Section VIII).
"""

from .boundary import Boundary, BoundaryCondition, adjust_indices  # noqa: F401
from .image import Image  # noqa: F401
from .iteration_space import IterationSpace  # noqa: F401
from .accessor import Accessor  # noqa: F401
from .mask import Mask  # noqa: F401
from .kernel import Kernel, Uniform  # noqa: F401
from .convolve import Reduce, reduce_identity  # noqa: F401
from .domain import Domain, cross_domain, disk_domain  # noqa: F401
from .interpolate import Interpolation, InterpolatedAccessor, resize  # noqa: F401
from .reduction import (  # noqa: F401
    AbsMaxReduction,
    GlobalReduction,
    MaxReduction,
    MinReduction,
    SumReduction,
)
