"""Reduction modes for the ``convolve`` kernel syntax (paper Section VIII).

The paper proposes ``output() = convolve(cMask, SUM, [&](){ return
cMask()*Input(cMask); })``.  Our frontend supports the Python equivalent::

    self.output(self.convolve(self.cmask, Reduce.SUM,
                              lambda: self.cmask() * self.input(self.cmask)))

which the parser expands into the doubly-nested loop over the mask window
with the chosen reduction — then constant propagation and unrolling apply
(exactly the optimizations the paper says this syntax enables).
"""

from __future__ import annotations

import enum

from ..errors import DslError


class Reduce(enum.Enum):
    """Reduction combining the per-tap values of a convolve expression."""

    SUM = "sum"
    MIN = "min"
    MAX = "max"
    PROD = "prod"

    @classmethod
    def coerce(cls, value) -> "Reduce":
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls(value.lower())
            except ValueError:
                pass
        raise DslError(f"unknown reduce mode: {value!r}")


def reduce_identity(mode: Reduce) -> float:
    """Identity element of *mode* (seed of the accumulator)."""
    mode = Reduce.coerce(mode)
    if mode == Reduce.SUM:
        return 0.0
    if mode == Reduce.PROD:
        return 1.0
    if mode == Reduce.MIN:
        return float("inf")
    if mode == Reduce.MAX:
        return float("-inf")
    raise DslError(f"unhandled reduce mode {mode}")


#: IR-level combine: (mode) -> (accumulator expr, value expr) -> expr builder
#: lives in the frontend, which knows the node types; this table only maps
#: the mode onto the binary operation / intrinsic used.
REDUCE_COMBINE_OP = {
    Reduce.SUM: ("+", None),
    Reduce.PROD: ("*", None),
    Reduce.MIN: (None, "min"),
    Reduce.MAX: (None, "max"),
}
