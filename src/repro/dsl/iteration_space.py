"""IterationSpace: the execute metadata (paper Section II).

Describes a rectangular region of interest in the *output* image; each point
in the region maps 1:1 to one work-item ("we assume that the iteration space
is independent in all dimensions and has a 1:1 mapping to work-items").
"""

from __future__ import annotations

from typing import Optional

from ..errors import DslError
from .image import Image


class IterationSpace:
    """Region of interest ``[offset_x, offset_x+width) x [offset_y, ...)``
    in an output image; defaults to the whole image."""

    def __init__(self, image: Image, width: Optional[int] = None,
                 height: Optional[int] = None, offset_x: int = 0,
                 offset_y: int = 0):
        if not isinstance(image, Image):
            raise DslError("IterationSpace requires an Image")
        width = image.width if width is None else int(width)
        height = image.height if height is None else int(height)
        if width < 1 or height < 1:
            raise DslError(f"invalid iteration space {width}x{height}")
        if (offset_x < 0 or offset_y < 0
                or offset_x + width > image.width
                or offset_y + height > image.height):
            raise DslError(
                f"iteration space {width}x{height}+{offset_x}+{offset_y} "
                f"exceeds image {image.width}x{image.height}")
        self.image = image
        self.width = width
        self.height = height
        self.offset_x = int(offset_x)
        self.offset_y = int(offset_y)

    @property
    def pixel_type(self):
        return self.image.pixel_type

    @property
    def size(self) -> int:
        return self.width * self.height

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"IterationSpace({self.image.name}, {self.width}x"
                f"{self.height}+{self.offset_x}+{self.offset_y})")
