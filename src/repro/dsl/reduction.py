"""Global operators: image-wide reductions (paper Sections I and VIII).

The paper's operator taxonomy includes global operators — "produce one
output for the operator applied to all pixels of the image (e.g., compute
the sum of all pixels)" — and its outlook asks for "a similar syntax that
allows the programmer to define operations that merge/reduce two pixels".

:class:`GlobalReduction` provides exactly that: the user implements
``reduce(left, right)``, a binary combine over pixel values, parsed by the
same frontend into IR.  The backend lowers it to the canonical two-stage
GPU reduction (block-level tree reduction in scratchpad memory, then a
second kernel over the per-block partials), and the simulator executes the
same tree order so floating-point results match device semantics.
"""

from __future__ import annotations

from typing import Optional

from ..errors import DslError
from .accessor import Accessor
from .iteration_space import IterationSpace


class GlobalReduction:
    """Base class for user-defined image-wide reductions.

    Subclass and implement :meth:`reduce`, a pure binary function over two
    pixel values written in the same restricted Python subset as
    ``Kernel.kernel()``.  The initial accumulator is the first pixel of
    the iteration space (HIPAcc semantics), so any associative,
    commutative combine works without an explicit identity.

    Example::

        class SumReduction(GlobalReduction):
            def reduce(self, left, right):
                return left + right

        total = compile_reduction(SumReduction(space, acc)).execute()
    """

    def __init__(self, iteration_space: IterationSpace,
                 accessor: Accessor):
        if not isinstance(iteration_space, IterationSpace):
            raise DslError("GlobalReduction requires an IterationSpace")
        if not isinstance(accessor, Accessor):
            raise DslError("GlobalReduction requires an Accessor")
        self.iteration_space = iteration_space
        self.accessor = accessor

    def reduce(self, left, right):
        """Binary combine; must be overridden."""
        raise NotImplementedError(
            f"{type(self).__name__} must implement reduce(left, right)")

    def execute(self, device: Optional[str] = None,
                backend: str = "cuda"):
        """Compile and run on the simulated device; returns the scalar."""
        from ..runtime.reduce import compile_reduction

        compiled = compile_reduction(self, backend=backend, device=device)
        return compiled.execute().value


class SumReduction(GlobalReduction):
    """Sum of all pixels in the iteration space."""

    def reduce(self, left, right):
        return left + right


class MinReduction(GlobalReduction):
    """Minimum pixel value."""

    def reduce(self, left, right):
        return min(left, right)


class MaxReduction(GlobalReduction):
    """Maximum pixel value."""

    def reduce(self, left, right):
        return max(left, right)


class AbsMaxReduction(GlobalReduction):
    """Largest magnitude — e.g. for normalising derivative images."""

    def reduce(self, left, right):
        return max(fabs(left), fabs(right))


# intrinsic names used by the built-in reductions, importable so the
# classes above are plain runnable Python too
from .math import fabs, max, min  # noqa: E402,F401,A004
