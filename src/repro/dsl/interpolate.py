"""Interpolating accessors: resampling views of an image.

HIPAcc accessors can map an iteration space of one size onto an input
image of another, with a configurable interpolation mode — the feature the
framework uses for multiresolution pyramids (the Section III-A
application).  An :class:`Interpolation` mode plus the output geometry
turn the Accessor into a resampling view:

* ``NEAREST`` — the input pixel whose centre is closest;
* ``LINEAR``  — bilinear blend of the four surrounding pixels.

Sampling coordinates follow the standard pixel-centre convention::

    in_x = (out_x + 0.5) * in_w / out_w - 0.5

and out-of-range taps go through the accessor's boundary handling, so a
``LINEAR`` accessor with ``MIRROR`` boundaries upsamples without edge
artifacts — exactly the paper's multiresolution use case.
"""

from __future__ import annotations

import enum
from typing import Tuple, Union

import numpy as np

from ..errors import DslError
from .accessor import Accessor
from .boundary import Boundary, BoundaryCondition
from .image import Image


class Interpolation(enum.Enum):
    """Interpolation mode of a resampling accessor."""

    NEAREST = "nearest"
    LINEAR = "linear"

    @classmethod
    def coerce(cls, value) -> "Interpolation":
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls(value.lower())
            except ValueError:
                pass
        raise DslError(f"unknown interpolation mode: {value!r}")


class InterpolatedAccessor(Accessor):
    """Accessor that resamples its image to a target geometry.

    ``out_width``/``out_height`` are the iteration-space dimensions the
    accessor will be read from; reads at iteration-space point (x, y)
    sample the image at the scaled coordinate.  Offsets (``dx``, ``dy``)
    are applied in *output* space before scaling, matching HIPAcc.
    """

    def __init__(self, source: Union[Image, BoundaryCondition],
                 out_width: int, out_height: int,
                 interpolation: Union[str, Interpolation]
                 = Interpolation.NEAREST):
        super().__init__(source)
        if out_width < 1 or out_height < 1:
            raise DslError(
                f"invalid resampling geometry {out_width}x{out_height}")
        self.out_width = int(out_width)
        self.out_height = int(out_height)
        self.interpolation = Interpolation.coerce(interpolation)
        if self.boundary_mode == Boundary.UNDEFINED \
                and (self.out_width != self.image.width
                     or self.out_height != self.image.height):
            # resampling taps routinely fall outside the image; demand an
            # explicit policy rather than faulting at run time
            raise DslError(
                "resampling accessors require a BoundaryCondition "
                "(interpolation taps cross the image border)")

    @property
    def scale(self) -> Tuple[float, float]:
        return (self.image.width / self.out_width,
                self.image.height / self.out_height)

    # -- simulator-side sampling -------------------------------------------

    def _source_coords(self, ox, oy):
        sx, sy = self.scale
        fx = (np.asarray(ox, dtype=np.float64) + 0.5) * sx - 0.5
        fy = (np.asarray(oy, dtype=np.float64) + 0.5) * sy - 0.5
        return fx, fy

    def sample(self, ix, iy) -> np.ndarray:
        """Resampling read at *output-space* indices (with any offsets
        already added by the caller)."""
        fx, fy = self._source_coords(ix, iy)
        if self.interpolation == Interpolation.NEAREST:
            nx = np.floor(fx + 0.5).astype(np.int64)
            ny = np.floor(fy + 0.5).astype(np.int64)
            return self._bounded(nx, ny)
        # bilinear
        x0 = np.floor(fx).astype(np.int64)
        y0 = np.floor(fy).astype(np.int64)
        wx = (fx - x0).astype(np.float32)
        wy = (fy - y0).astype(np.float32)
        v00 = self._bounded(x0, y0).astype(np.float32)
        v10 = self._bounded(x0 + 1, y0).astype(np.float32)
        v01 = self._bounded(x0, y0 + 1).astype(np.float32)
        v11 = self._bounded(x0 + 1, y0 + 1).astype(np.float32)
        top = v00 * (1 - wx) + v10 * wx
        bottom = v01 * (1 - wx) + v11 * wx
        out = top * (1 - wy) + bottom * wy
        return out.astype(self.pixel_type.np_dtype)

    def _bounded(self, ix, iy) -> np.ndarray:
        return Accessor.sample(self, ix, iy)


def resize(data: np.ndarray, out_width: int, out_height: int,
           interpolation: Union[str, Interpolation] = Interpolation.LINEAR,
           boundary: Boundary = Boundary.CLAMP) -> np.ndarray:
    """Host-side convenience: resample *data* through an
    InterpolatedAccessor (the same arithmetic the device code uses)."""
    data = np.asarray(data, dtype=np.float32)
    h, w = data.shape
    img = Image(w, h).set_data(data)
    bc = BoundaryCondition(img, 3, 3, boundary)
    acc = InterpolatedAccessor(bc, out_width, out_height, interpolation)
    oy, ox = np.mgrid[0:out_height, 0:out_width]
    return np.asarray(acc.sample(ox, oy), dtype=np.float32)
