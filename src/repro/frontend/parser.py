"""Lower a ``Kernel.kernel()`` method body into the kernel IR.

The supported Python subset mirrors what HIPAcc accepts in C++ kernels:

* locals with scalar types (first assignment declares; ``x: float = 0.0``
  pins a type),
* arithmetic / comparison / boolean expressions, ternary ``a if c else b``,
* calls of registered math intrinsics (``exp``, ``expf``, ``sqrt``, ``min``,
  ``max``, ``abs``, ...), plus ``float(...)`` / ``int(...)`` casts,
* ``for v in range(a, b[, c])`` loops,
* ``if`` / ``elif`` / ``else``,
* pixel reads ``self.acc()`` / ``self.acc(dx, dy)``,
* mask reads ``self.mask(dx, dy)``,
* position queries ``self.x()`` / ``self.y()``,
* the output write ``self.output(expr)``,
* the convolve syntax ``self.convolve(mask, Reduce.SUM, lambda: ...)``
  (paper Section VIII), expanded into the equivalent loops.

Scalar instance attributes (``self.sigma_d``) are *baked* as compile-time
constants unless wrapped in :class:`~repro.dsl.kernel.Uniform`, which turns
them into runtime kernel arguments.  Free module-level numeric names are
baked too.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from typing import Dict, List, Optional, Set

from ..dsl.accessor import Accessor
from ..dsl.convolve import Reduce, reduce_identity
from ..dsl.domain import Domain
from ..dsl.kernel import Kernel, Uniform
from ..dsl.mask import Mask
from ..errors import FrontendError
from ..intrinsics import ALIASES, INTRINSICS
from ..types import BOOL, FLOAT, INT, as_scalar_type
from ..ir.nodes import (
    AccessorInfo,
    AccessorRead,
    Assign,
    BinOp,
    BoolConst,
    Call,
    Cast,
    Expr,
    FloatConst,
    ForRange,
    GidX,
    GidY,
    If,
    IntConst,
    KernelIR,
    MaskInfo,
    MaskRead,
    OutputWrite,
    ParamInfo,
    Select,
    Stmt,
    UnOp,
    VarDecl,
    VarRef,
)

_AST_BINOPS = {
    ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.Div: "/", ast.Mod: "%",
    ast.LShift: "<<", ast.RShift: ">>", ast.BitAnd: "&", ast.BitOr: "|",
    ast.BitXor: "^",
}
_AST_CMPOPS = {
    ast.Lt: "<", ast.LtE: "<=", ast.Gt: ">", ast.GtE: ">=",
    ast.Eq: "==", ast.NotEq: "!=",
}
_AST_UNARYOPS = {ast.USub: "-", ast.UAdd: "+", ast.Not: "!", ast.Invert: "~"}

_CAST_BUILTINS = {"float": FLOAT, "int": INT, "bool": BOOL}


def _stamp_linenos(stmts: List[Stmt], lineno: Optional[int]) -> None:
    """Fill ``lineno`` on every statement (recursively) that lacks one.

    Statements built from nested AST nodes are stamped with their own
    (more precise) line first — this only back-fills synthesized
    statements, e.g. the loops a ``convolve()`` expansion produced while
    lowering the enclosing assignment.
    """
    if lineno is None:
        return
    for s in stmts:
        if s.lineno is None:
            s.lineno = lineno
        if isinstance(s, If):
            _stamp_linenos(s.then_body, s.lineno)
            _stamp_linenos(s.else_body, s.lineno)
        elif isinstance(s, ForRange):
            _stamp_linenos(s.body, s.lineno)


class _ConvolveContext:
    """Active ``convolve`` expansion: maps mask-relative reads onto the
    synthesized loop variables (Mask) or the current constant tap offset
    (Domain)."""

    def __init__(self, mask_attr: str, xvar: str = None, yvar: str = None,
                 fixed_offset=None):
        self.mask_attr = mask_attr
        self.xvar = xvar
        self.yvar = yvar
        self.fixed_offset = fixed_offset   # (dx, dy) ints in domain mode

    def offset_exprs(self):
        if self.fixed_offset is not None:
            dx, dy = self.fixed_offset
            return IntConst(dx), IntConst(dy)
        return VarRef(self.xvar), VarRef(self.yvar)


class _Parser:
    def __init__(self, kernel: Kernel, bake_params: bool):
        self.kernel_obj = kernel
        self.bake_params = bake_params
        self.accessors: Dict[str, AccessorInfo] = {}
        self.accessor_objs: Dict[str, Accessor] = {}
        self.masks: Dict[str, MaskInfo] = {}
        self.mask_objs: Dict[str, Mask] = {}
        self.domains: Dict[str, Domain] = {}
        self.params: Dict[str, ParamInfo] = {}
        self.scopes: List[Set[str]] = [set()]
        self.pending: List[Stmt] = []
        self.convolve_ctx: Optional[_ConvolveContext] = None
        self._convolve_counter = 0
        self._source_lines: List[str] = []

        fn = type(kernel).kernel
        self.fn_globals = getattr(fn, "__globals__", {})
        self._collect_attributes()

    # -- error helper --------------------------------------------------------

    def err(self, message: str, node: Optional[ast.AST] = None) -> FrontendError:
        lineno = getattr(node, "lineno", None)
        line = None
        if lineno is not None and 0 < lineno <= len(self._source_lines):
            line = self._source_lines[lineno - 1]
        return FrontendError(message, lineno, line)

    # -- attribute resolution -----------------------------------------------

    def _collect_attributes(self) -> None:
        inst = self.kernel_obj
        for name, value in vars(inst).items():
            if name.startswith("_") or name == "iteration_space":
                continue
            if isinstance(value, Accessor):
                from ..dsl.interpolate import InterpolatedAccessor
                interp = None
                out_size = None
                if isinstance(value, InterpolatedAccessor):
                    interp = value.interpolation.value
                    out_size = (value.out_width, value.out_height)
                self.accessor_objs[name] = value
                self.accessors[name] = AccessorInfo(
                    name=name,
                    pixel_type=value.pixel_type,
                    boundary_mode=value.boundary_mode.value,
                    boundary_constant=float(value.boundary_constant or 0.0),
                    window=value.window,
                    interpolation=interp,
                    out_size=out_size,
                )
            elif isinstance(value, Mask):
                self.mask_objs[name] = value
                self.masks[name] = MaskInfo(
                    name=name,
                    pixel_type=value.pixel_type,
                    size=value.size,
                    coefficients=(value.coefficients if value.is_set
                                  else None),
                    compile_time_constant=value.compile_time_constant,
                )
            elif isinstance(value, Domain):
                self.domains[name] = value
            elif isinstance(value, Uniform):
                self.params[name] = ParamInfo(
                    name=name, type=value.type, value=value.value,
                    baked=False)
            elif isinstance(value, bool):
                self.params[name] = ParamInfo(name, BOOL, value,
                                              baked=self.bake_params)
            elif isinstance(value, int):
                self.params[name] = ParamInfo(name, INT, value,
                                              baked=self.bake_params)
            elif isinstance(value, float):
                self.params[name] = ParamInfo(name, FLOAT, value,
                                              baked=self.bake_params)
            # other attribute kinds are simply invisible to the kernel body

    # -- scope handling -------------------------------------------------------

    def declared(self, name: str) -> bool:
        return any(name in s for s in self.scopes)

    def declare(self, name: str) -> None:
        self.scopes[-1].add(name)

    # -- expression conversion ------------------------------------------------

    def expr(self, node: ast.expr) -> Expr:
        if isinstance(node, ast.Constant):
            v = node.value
            if isinstance(v, bool):
                return BoolConst(v)
            if isinstance(v, int):
                return IntConst(v)
            if isinstance(v, float):
                return FloatConst(v)
            raise self.err(f"unsupported constant {v!r}", node)
        if isinstance(node, ast.Name):
            return self._name(node)
        if isinstance(node, ast.Attribute):
            return self._attribute(node)
        if isinstance(node, ast.BinOp):
            op = _AST_BINOPS.get(type(node.op))
            if op is None:
                if isinstance(node.op, ast.Pow):
                    return Call("pow", (self.expr(node.left),
                                        self.expr(node.right)))
                if isinstance(node.op, ast.FloorDiv):
                    # integer division in C semantics
                    return BinOp("/", self.expr(node.left),
                                 self.expr(node.right))
                raise self.err(
                    f"unsupported operator {type(node.op).__name__}", node)
            return BinOp(op, self.expr(node.left), self.expr(node.right))
        if isinstance(node, ast.UnaryOp):
            op = _AST_UNARYOPS.get(type(node.op))
            if op is None:
                raise self.err(
                    f"unsupported unary operator "
                    f"{type(node.op).__name__}", node)
            return UnOp(op, self.expr(node.operand))
        if isinstance(node, ast.Compare):
            if len(node.ops) != 1:
                # chain a < b < c  =>  (a < b) && (b < c)
                result: Optional[Expr] = None
                left = node.left
                for op_node, right in zip(node.ops, node.comparators):
                    op = _AST_CMPOPS.get(type(op_node))
                    if op is None:
                        raise self.err("unsupported comparison", node)
                    piece = BinOp(op, self.expr(left), self.expr(right))
                    result = piece if result is None else BinOp(
                        "&&", result, piece)
                    left = right
                return result
            op = _AST_CMPOPS.get(type(node.ops[0]))
            if op is None:
                raise self.err("unsupported comparison operator", node)
            return BinOp(op, self.expr(node.left),
                         self.expr(node.comparators[0]))
        if isinstance(node, ast.BoolOp):
            op = "&&" if isinstance(node.op, ast.And) else "||"
            result = self.expr(node.values[0])
            for v in node.values[1:]:
                result = BinOp(op, result, self.expr(v))
            return result
        if isinstance(node, ast.IfExp):
            return Select(self.expr(node.test), self.expr(node.body),
                          self.expr(node.orelse))
        if isinstance(node, ast.Call):
            return self._call(node)
        raise self.err(
            f"unsupported expression: {type(node).__name__}", node)

    def _name(self, node: ast.Name) -> Expr:
        name = node.id
        if self.declared(name):
            return VarRef(name)
        if name in self.params:
            return self._param_ref(name)
        # free module-level numeric constant?
        if name in self.fn_globals:
            value = self.fn_globals[name]
            if isinstance(value, bool):
                return BoolConst(value)
            if isinstance(value, int):
                return IntConst(value)
            if isinstance(value, float):
                return FloatConst(value)
        raise self.err(f"unknown name {name!r} in kernel body", node)

    def _param_ref(self, name: str) -> Expr:
        p = self.params[name]
        if p.baked:
            if p.type == BOOL:
                return BoolConst(bool(p.value))
            if p.type.is_float:
                return FloatConst(float(p.value))
            return IntConst(int(p.value))
        return VarRef(name)

    def _attribute(self, node: ast.Attribute) -> Expr:
        if (isinstance(node.value, ast.Name) and node.value.id == "self"):
            name = node.attr
            if name in self.params:
                return self._param_ref(name)
            if name in self.accessors or name in self.masks \
                    or name in self.domains:
                raise self.err(
                    f"self.{name} must be called (e.g. self.{name}(dx, dy)),"
                    f" not referenced", node)
            raise self.err(
                f"self.{name} is not a kernel parameter, accessor or mask",
                node)
        # Reduce.SUM style enum constants are consumed by _call directly.
        raise self.err(
            f"unsupported attribute access "
            f"{ast.dump(node, annotate_fields=False)}", node)

    # -- call handling ----------------------------------------------------

    def _call(self, node: ast.Call) -> Expr:
        if node.keywords:
            raise self.err("keyword arguments are not supported in kernels",
                           node)
        func = node.func
        # self.<something>(...)
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "self"):
            return self._self_call(func.attr, node)
        if isinstance(func, ast.Name):
            fname = func.id
            if fname in _CAST_BUILTINS:
                if len(node.args) != 1:
                    raise self.err(f"{fname}() takes one argument", node)
                return Cast(_CAST_BUILTINS[fname], self.expr(node.args[0]))
            if fname in INTRINSICS or fname in ALIASES:
                canonical = ALIASES.get(fname, fname)
                return Call(canonical,
                            tuple(self.expr(a) for a in node.args))
            raise self.err(
                f"call of unsupported function {fname!r}; only registered "
                f"math intrinsics may be called in kernels", node)
        # math.exp style
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "math"):
            dotted = f"math.{func.attr}"
            if dotted in ALIASES:
                return Call(ALIASES[dotted],
                            tuple(self.expr(a) for a in node.args))
            raise self.err(f"unsupported math function {dotted}", node)
        raise self.err("unsupported call target", node)

    def _self_call(self, name: str, node: ast.Call) -> Expr:
        if name == "x":
            return GidX()
        if name == "y":
            return GidY()
        if name == "output":
            raise self.err(
                "self.output(...) must be a standalone statement", node)
        if name == "convolve":
            return self._expand_convolve(node)
        if name in self.accessors:
            return self._accessor_read(name, node)
        if name in self.masks:
            return self._mask_read(name, node)
        raise self.err(f"self.{name} is not callable in a kernel body", node)

    def _accessor_read(self, name: str, node: ast.Call) -> Expr:
        args = node.args
        if len(args) == 0:
            return AccessorRead(name)
        # accessor read at the current convolve/mask/domain position:
        # self.input(self.mask) or self.input(self.dom)
        if (len(args) == 1 and isinstance(args[0], ast.Attribute)
                and isinstance(args[0].value, ast.Name)
                and args[0].value.id == "self"
                and (args[0].attr in self.masks
                     or args[0].attr in self.domains)):
            ctx = self.convolve_ctx
            if ctx is None or ctx.mask_attr != args[0].attr:
                raise self.err(
                    f"self.{name}(self.{args[0].attr}) is only valid inside "
                    f"a convolve() over that mask/domain", node)
            dx, dy = ctx.offset_exprs()
            return AccessorRead(name, dx, dy)
        if len(args) == 2:
            return AccessorRead(name, self.expr(args[0]),
                                self.expr(args[1]))
        raise self.err(
            f"accessor read self.{name}(...) takes 0 or 2 offset "
            f"arguments", node)

    def _mask_read(self, name: str, node: ast.Call) -> Expr:
        args = node.args
        if len(args) == 0:
            ctx = self.convolve_ctx
            if ctx is None or ctx.mask_attr != name:
                raise self.err(
                    f"self.{name}() without offsets is only valid inside a "
                    f"convolve() over that mask", node)
            return MaskRead(name, VarRef(ctx.xvar), VarRef(ctx.yvar))
        if len(args) == 2:
            return MaskRead(name, self.expr(args[0]), self.expr(args[1]))
        raise self.err(
            f"mask read self.{name}(...) takes 0 or 2 offset arguments",
            node)

    # -- convolve expansion -------------------------------------------------

    def _resolve_reduce(self, node: ast.expr) -> Reduce:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return Reduce.coerce(node.value)
        if isinstance(node, ast.Attribute) and node.attr in Reduce.__members__:
            return Reduce[node.attr]
        if isinstance(node, ast.Name) and node.id in Reduce.__members__:
            return Reduce[node.id]
        raise self.err(
            "convolve() reduce mode must be Reduce.SUM/MIN/MAX/PROD or a "
            "string", node)

    def _expand_convolve(self, node: ast.Call) -> Expr:
        if len(node.args) != 3:
            raise self.err(
                "convolve() expects (mask, reduce_mode, lambda)", node)
        mask_node, mode_node, fn_node = node.args
        is_attr = (isinstance(mask_node, ast.Attribute)
                   and isinstance(mask_node.value, ast.Name)
                   and mask_node.value.id == "self")
        if not (is_attr and (mask_node.attr in self.masks
                             or mask_node.attr in self.domains)):
            raise self.err(
                "convolve() first argument must be a self.<mask> or "
                "self.<domain> attribute", node)
        if not isinstance(fn_node, ast.Lambda) or fn_node.args.args:
            raise self.err(
                "convolve() third argument must be a zero-argument lambda",
                node)
        if self.convolve_ctx is not None:
            raise self.err("nested convolve() is not supported", node)

        mask_name = mask_node.attr
        mode = self._resolve_reduce(mode_node)
        from ..dsl.convolve import REDUCE_COMBINE_OP
        binop, intrinsic = REDUCE_COMBINE_OP[mode]
        n = self._convolve_counter
        self._convolve_counter += 1
        acc = f"_cvx_acc{n}"

        def combine_with(tap: Expr) -> Expr:
            if binop is not None:
                return BinOp(binop, VarRef(acc), tap)
            return Call(intrinsic, (VarRef(acc), tap))

        identity = reduce_identity(mode)

        if mask_name in self.domains:
            # Domain: straight-line expansion over the enabled taps only
            domain = self.domains[mask_name]
            self.pending.append(VarDecl(acc, FloatConst(identity), FLOAT))
            for dx, dy in domain.enabled_offsets():
                self.convolve_ctx = _ConvolveContext(
                    mask_name, fixed_offset=(dx, dy))
                try:
                    tap = self.expr(fn_node.body)
                finally:
                    self.convolve_ctx = None
                self.pending.append(Assign(acc, combine_with(tap)))
            self.declare(acc)
            return VarRef(acc)

        info = self.masks[mask_name]
        hx, hy = info.size[0] // 2, info.size[1] // 2
        xv, yv = f"_cvx_x{n}", f"_cvx_y{n}"

        self.convolve_ctx = _ConvolveContext(mask_name, xv, yv)
        try:
            tap = self.expr(fn_node.body)
        finally:
            self.convolve_ctx = None

        body = [Assign(acc, combine_with(tap))]
        inner = ForRange(xv, IntConst(-hx), IntConst(hx + 1), IntConst(1),
                         body)
        outer = ForRange(yv, IntConst(-hy), IntConst(hy + 1), IntConst(1),
                         [inner])
        self.pending.append(VarDecl(acc, FloatConst(identity), FLOAT))
        self.pending.append(outer)
        self.declare(acc)
        return VarRef(acc)

    # -- statement conversion ------------------------------------------------

    def body(self, nodes: List[ast.stmt]) -> List[Stmt]:
        out: List[Stmt] = []
        for n in nodes:
            produced = self.stmt(n)
            _stamp_linenos(produced, getattr(n, "lineno", None))
            out.extend(produced)
        return out

    def _flush_pending(self, out: List[Stmt]) -> None:
        out.extend(self.pending)
        self.pending = []

    def stmt(self, node: ast.stmt) -> List[Stmt]:
        out: List[Stmt] = []
        if isinstance(node, ast.Pass):
            return out
        if isinstance(node, ast.Return):
            if node.value is not None:
                raise self.err(
                    "kernels do not return values; write the result with "
                    "self.output(expr)", node)
            return out
        if isinstance(node, ast.Expr):
            call = node.value
            if (isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)
                    and isinstance(call.func.value, ast.Name)
                    and call.func.value.id == "self"
                    and call.func.attr == "output"):
                if len(call.args) != 1:
                    raise self.err("self.output(expr) takes one argument",
                                   node)
                value = self.expr(call.args[0])
                self._flush_pending(out)
                out.append(OutputWrite(value))
                return out
            raise self.err(
                "expression statements other than self.output(...) are not "
                "supported", node)
        if isinstance(node, ast.Assign):
            if len(node.targets) != 1:
                raise self.err("multiple assignment targets not supported",
                               node)
            target = node.targets[0]
            if isinstance(target, ast.Tuple):
                raise self.err("tuple unpacking is not supported", node)
            if not isinstance(target, ast.Name):
                raise self.err(
                    "only simple local variables can be assigned", node)
            value = self.expr(node.value)
            self._flush_pending(out)
            if self.declared(target.id):
                out.append(Assign(target.id, value))
            else:
                self.declare(target.id)
                out.append(VarDecl(target.id, value))
            return out
        if isinstance(node, ast.AnnAssign):
            if not isinstance(node.target, ast.Name):
                raise self.err("annotated target must be a name", node)
            if node.value is None:
                raise self.err("annotated declaration requires a value",
                               node)
            if not isinstance(node.annotation, ast.Name):
                raise self.err("type annotation must be a simple name", node)
            try:
                declared_type = as_scalar_type(node.annotation.id)
            except Exception:
                raise self.err(
                    f"unknown type annotation {node.annotation.id!r}",
                    node) from None
            value = self.expr(node.value)
            self._flush_pending(out)
            if self.declared(node.target.id):
                raise self.err(
                    f"redeclaration of {node.target.id!r}", node)
            self.declare(node.target.id)
            out.append(VarDecl(node.target.id, value, declared_type))
            return out
        if isinstance(node, ast.AugAssign):
            if not isinstance(node.target, ast.Name):
                raise self.err("augmented assignment target must be a name",
                               node)
            if not self.declared(node.target.id):
                raise self.err(
                    f"augmented assignment to undeclared variable "
                    f"{node.target.id!r}", node)
            op = _AST_BINOPS.get(type(node.op))
            if op is None:
                raise self.err("unsupported augmented assignment operator",
                               node)
            value = self.expr(node.value)
            self._flush_pending(out)
            out.append(Assign(node.target.id,
                              BinOp(op, VarRef(node.target.id), value)))
            return out
        if isinstance(node, ast.If):
            cond = self.expr(node.test)
            self._flush_pending(out)
            self.scopes.append(set())
            then_body = self.body(node.body)
            self.scopes.pop()
            self.scopes.append(set())
            else_body = self.body(node.orelse)
            self.scopes.pop()
            out.append(If(cond, then_body, else_body))
            return out
        if isinstance(node, ast.For):
            return self._for(node, out)
        if isinstance(node, ast.While):
            raise self.err(
                "while loops are not supported; use for ... in range(...)",
                node)
        raise self.err(
            f"unsupported statement: {type(node).__name__}", node)

    def _for(self, node: ast.For, out: List[Stmt]) -> List[Stmt]:
        if node.orelse:
            raise self.err("for/else is not supported", node)
        if not isinstance(node.target, ast.Name):
            raise self.err("loop target must be a simple name", node)
        it = node.iter
        if not (isinstance(it, ast.Call) and isinstance(it.func, ast.Name)
                and it.func.id == "range"):
            raise self.err("loops must iterate over range(...)", node)
        bounds = [self.expr(a) for a in it.args]
        if len(bounds) == 1:
            start: Expr = IntConst(0)
            stop = bounds[0]
            step: Expr = IntConst(1)
        elif len(bounds) == 2:
            start, stop = bounds
            step = IntConst(1)
        elif len(bounds) == 3:
            start, stop, step = bounds
        else:
            raise self.err("range() takes 1-3 arguments", node)
        self._flush_pending(out)
        self.scopes.append({node.target.id})
        body = self.body(node.body)
        self.scopes.pop()
        out.append(ForRange(node.target.id, start, stop, step, body))
        return out

    # -- entry point -------------------------------------------------------

    def parse(self) -> KernelIR:
        fn = type(self.kernel_obj).kernel
        if fn is Kernel.kernel:
            raise FrontendError(
                f"{type(self.kernel_obj).__name__} does not override "
                f"kernel()")
        try:
            source = inspect.getsource(fn)
        except (OSError, TypeError) as exc:
            raise FrontendError(
                f"cannot retrieve source of {fn.__qualname__}: {exc}"
            ) from None
        source = textwrap.dedent(source)
        self._source_lines = source.splitlines()
        tree = ast.parse(source)
        fndef = tree.body[0]
        if not isinstance(fndef, (ast.FunctionDef, ast.AsyncFunctionDef)):
            raise FrontendError("kernel() source did not parse to a function")
        body = self.body(list(fndef.body))
        return KernelIR(
            name=type(self.kernel_obj).__name__,
            pixel_type=self.kernel_obj.iteration_space.pixel_type,
            body=body,
            accessors=list(self.accessors.values()),
            masks=list(self.masks.values()),
            params=list(self.params.values()),
            source_lines=tuple(self._source_lines),
        )


def accessor_objects(kernel: Kernel) -> Dict[str, Accessor]:
    """Map attribute names to the Accessor instances of *kernel* — the
    binding the simulator needs to resolve IR reads to image data."""
    return {name: value for name, value in vars(kernel).items()
            if isinstance(value, Accessor) and not name.startswith("_")}


def mask_objects(kernel: Kernel) -> Dict[str, Mask]:
    """Map attribute names to the Mask instances of *kernel*."""
    return {name: value for name, value in vars(kernel).items()
            if isinstance(value, Mask) and not name.startswith("_")}


def parse_kernel(kernel: Kernel, bake_params: bool = True) -> KernelIR:
    """Parse *kernel*'s ``kernel()`` body into an (untyped) KernelIR.

    With *bake_params* (default), plain scalar attributes become literals in
    the IR; :class:`~repro.dsl.kernel.Uniform` attributes always stay
    runtime parameters.  Run :func:`repro.ir.typecheck_kernel` on the result
    before code generation.
    """
    if not isinstance(kernel, Kernel):
        raise FrontendError("parse_kernel expects a Kernel instance")
    return _Parser(kernel, bake_params).parse()
