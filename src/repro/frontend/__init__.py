"""Compiler frontend: restricted-Python kernel bodies -> kernel IR.

Stands in for HIPAcc's Clang frontend: :func:`parse_kernel` extracts the
source of a ``Kernel.kernel()`` method, parses it with :mod:`ast`, resolves
``self.*`` attributes against the instance (Accessors, Masks, scalar
parameters) and lowers the body into :class:`repro.ir.KernelIR`.
"""

from .parser import parse_kernel  # noqa: F401
