"""Frontend for global reductions: parse ``reduce(left, right)``.

The combine body uses the same restricted Python subset as kernels, with
two differences: the two parameters are in scope as values of the pixel
type, and the body ends with ``return <expr>`` instead of an ``output()``
write.
"""

from __future__ import annotations

import ast
import dataclasses
import inspect
import textwrap
from typing import List

from ..dsl.reduction import GlobalReduction
from ..errors import FrontendError
from ..ir.nodes import (
    AccessorInfo,
    Expr,
    KernelIR,
    OutputWrite,
    Stmt,
    VarRef,
)
from ..ir.typecheck import typecheck_kernel
from ..types import ScalarType
from .parser import _Parser

#: canonical parameter names in the reduction IR
LEFT, RIGHT = "_red_left", "_red_right"


@dataclasses.dataclass
class ReductionIR:
    """A parsed, type-checked reduction combine function.

    ``body`` is a statement list whose final ``OutputWrite`` holds the
    combined value; ``LEFT``/``RIGHT`` are free variables of the pixel
    type.  Reuses the kernel IR machinery (the combine is just a tiny
    kernel over two scalars).
    """

    name: str
    pixel_type: ScalarType
    body: List[Stmt]
    accessor: AccessorInfo

    @property
    def result_expr(self) -> Expr:
        for s in reversed(self.body):
            if isinstance(s, OutputWrite):
                return s.value
        raise FrontendError("reduction combine produced no result")


class _ReductionParser(_Parser):
    """Kernel parser variant: two value parameters, return-as-result."""

    def __init__(self, reduction: GlobalReduction, arg_names):
        # GlobalReduction is not a Kernel; bypass _Parser.__init__'s
        # attribute scan with a tailored setup.
        self.kernel_obj = reduction
        self.bake_params = True
        self.accessors = {}
        self.accessor_objs = {}
        self.masks = {}
        self.mask_objs = {}
        self.params = {}
        self.scopes = [set(arg_names)]
        self.pending = []
        self.convolve_ctx = None
        self._convolve_counter = 0
        self._source_lines = []
        fn = type(reduction).reduce
        self.fn_globals = getattr(fn, "__globals__", {})
        self._arg_map = {arg_names[0]: LEFT, arg_names[1]: RIGHT}

    def _name(self, node):
        if node.id in self._arg_map:
            return VarRef(self._arg_map[node.id])
        return super()._name(node)

    def stmt(self, node):
        if isinstance(node, ast.Return):
            if node.value is None:
                raise self.err("reduce() must return a value", node)
            value = self.expr(node.value)
            out: List[Stmt] = []
            self._flush_pending(out)
            out.append(OutputWrite(value))
            return out
        return super().stmt(node)


def parse_reduction(reduction: GlobalReduction) -> ReductionIR:
    """Parse and type check a GlobalReduction's combine function."""
    if not isinstance(reduction, GlobalReduction):
        raise FrontendError(
            "parse_reduction expects a GlobalReduction instance")
    fn = type(reduction).reduce
    if fn is GlobalReduction.reduce:
        raise FrontendError(
            f"{type(reduction).__name__} does not override reduce()")
    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError) as exc:
        raise FrontendError(
            f"cannot retrieve source of {fn.__qualname__}: {exc}"
        ) from None
    tree = ast.parse(source)
    fndef = tree.body[0]
    if not isinstance(fndef, ast.FunctionDef):
        raise FrontendError("reduce() source did not parse to a function")
    args = [a.arg for a in fndef.args.args if a.arg != "self"]
    if len(args) != 2:
        raise FrontendError(
            f"reduce() must take exactly two value parameters, got "
            f"{args}")

    parser = _ReductionParser(reduction, args)
    parser._source_lines = source.splitlines()
    body = parser.body(list(fndef.body))
    if not any(isinstance(s, OutputWrite) for s in body):
        raise FrontendError("reduce() must end in a return statement")

    pixel_type = reduction.accessor.pixel_type
    acc_info = AccessorInfo(
        name="input",
        pixel_type=pixel_type,
        boundary_mode=reduction.accessor.boundary_mode.value,
        window=(1, 1),
        is_read=True,
    )
    # type check by wrapping as a kernel with LEFT/RIGHT as runtime params
    from ..ir.nodes import ParamInfo
    shell = KernelIR(
        name=type(reduction).__name__,
        pixel_type=pixel_type,
        body=body,
        accessors=[acc_info],
        params=[ParamInfo(LEFT, pixel_type, None, baked=False),
                ParamInfo(RIGHT, pixel_type, None, baked=False)],
    )
    checked = typecheck_kernel(shell)
    return ReductionIR(
        name=type(reduction).__name__,
        pixel_type=pixel_type,
        body=checked.body,
        accessor=acc_info,
    )
