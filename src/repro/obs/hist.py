"""Thread-safe, mergeable log-bucketed latency histograms.

The metrics registry (:mod:`repro.obs.metrics`) carries lifetime
*counters*; what it could not answer before this module existed is
"what does the latency distribution look like" — the paper's whole
argument is measured latency per configuration, and a mean hides
exactly the tail the serving path cares about.

:class:`Histogram` records values into **logarithmically spaced
buckets**: bucket ``i`` holds values in ``[GROWTH**i, GROWTH**(i+1))``
with ``GROWTH = 2**0.25`` (≈ 19 % relative width, ≈ 12 buckets per
decade).  The representation is a sparse ``{bucket_index: count}``
dict, so

* recording is O(1) (one ``log`` + one dict increment under a lock);
* two histograms recorded independently **merge exactly** — bucket
  indices are a pure function of the value, so a merge of per-thread
  histograms is bit-identical to one histogram that saw every value
  (the concurrency test pins this);
* quantile estimation is bounded by the bucket width: ``quantile()``
  interpolates inside the covering bucket, so ``p50``/``p90``/``p99``
  carry at most ~9 % relative error — far below the run-to-run noise
  of any wall-clock measurement, and schema-stable in a way that a
  sorted-sample quantile over an unbounded value buffer is not.

:class:`HistogramSet` is the named collection the runtime records into
through :func:`observe`; the process-wide default set is registered as
the ``"hist"`` source of the default metrics registry, so every
``/metrics`` snapshot and trace export carries the flattened
``<name>.count/.sum/.min/.max/.p50/.p90/.p99`` keys under the
documented ``*.hist.*`` namespace (docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Optional, Tuple

#: ratio between adjacent bucket boundaries; 2**0.25 gives ~12 buckets
#: per decade and bounds the quantile estimation error at ~9 %.
GROWTH = 2.0 ** 0.25

_LOG_GROWTH = math.log(GROWTH)

#: quantiles every flattened metrics rendering carries
QUANTILES = ((0.50, "p50"), (0.90, "p90"), (0.99, "p99"))


def bucket_index(value: float) -> int:
    """Index of the log bucket covering *value* (> 0)."""
    return math.floor(math.log(value) / _LOG_GROWTH)


def bucket_bounds(index: int) -> Tuple[float, float]:
    """``[lower, upper)`` value bounds of bucket *index*."""
    return GROWTH ** index, GROWTH ** (index + 1)


class Histogram:
    """One mergeable distribution.  All methods are thread-safe.

    Non-positive values (a queue wait rounded to exactly zero, a batch
    of size 0 cannot happen but a duration can) land in a dedicated
    underflow bucket that never participates in log bucketing.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._lock = threading.Lock()
        self._counts: Dict[int, int] = {}
        self._zero = 0            # values <= 0
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    # -- recording -----------------------------------------------------------

    def record(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            if value <= 0.0:
                self._zero += 1
            else:
                idx = bucket_index(value)
                self._counts[idx] = self._counts.get(idx, 0) + 1

    def record_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    # -- merging -------------------------------------------------------------

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold *other*'s observations into this histogram (in place;
        returns self).  Exact: equal bucketing by construction."""
        with other._lock:
            counts = dict(other._counts)
            zero, count = other._zero, other._count
            total, lo, hi = other._sum, other._min, other._max
        with self._lock:
            for idx, n in counts.items():
                self._counts[idx] = self._counts.get(idx, 0) + n
            self._zero += zero
            self._count += count
            self._sum += total
            if lo is not None and (self._min is None or lo < self._min):
                self._min = lo
            if hi is not None and (self._max is None or hi > self._max):
                self._max = hi
        return self

    # -- reading -------------------------------------------------------------

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> Dict[str, object]:
        """A consistent copy: ``{count, sum, min, max, zero, counts}``."""
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "zero": self._zero,
                "counts": dict(self._counts),
            }

    def quantile(self, q: float) -> float:
        """Estimate the *q*-quantile (``0 <= q <= 1``); 0.0 when empty.

        Finds the bucket covering the target rank by cumulative count
        and interpolates linearly inside it, clamped to the observed
        ``min``/``max`` so a single-value histogram reports that value
        exactly at every quantile.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q!r} outside [0, 1]")
        snap = self.snapshot()
        count = snap["count"]
        if count == 0:
            return 0.0
        lo_seen, hi_seen = snap["min"], snap["max"]
        # rank of the target observation, 1-based (nearest-rank method)
        rank = max(1, math.ceil(q * count))
        cumulative = snap["zero"]
        if rank <= cumulative:
            return min(0.0, hi_seen)
        for idx in sorted(snap["counts"]):
            n = snap["counts"][idx]
            if rank <= cumulative + n:
                lower, upper = bucket_bounds(idx)
                # position of the rank inside this bucket, (0, 1]
                frac = (rank - cumulative) / n
                estimate = lower + (upper - lower) * frac
                return max(lo_seen, min(hi_seen, estimate))
            cumulative += n
        return hi_seen                # pragma: no cover - defensive

    # -- renderings ----------------------------------------------------------

    def metrics(self, prefix: Optional[str] = None) -> Dict[str, float]:
        """Flattened stats under ``<prefix>.<stat>`` (prefix defaults
        to the histogram's name) — the ``*.hist.*`` namespace keys."""
        prefix = prefix if prefix is not None else self.name
        snap = self.snapshot()
        out = {
            f"{prefix}.count": snap["count"],
            f"{prefix}.sum": round(snap["sum"], 6),
            f"{prefix}.min": round(snap["min"] or 0.0, 6),
            f"{prefix}.max": round(snap["max"] or 0.0, 6),
        }
        for q, label in QUANTILES:
            out[f"{prefix}.{label}"] = round(self.quantile(q), 6)
        return out

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``[(upper_bound, cumulative_count), ...]`` in ascending
        bound order — the Prometheus ``le`` series (without +Inf)."""
        snap = self.snapshot()
        out: List[Tuple[float, int]] = []
        cumulative = snap["zero"]
        if cumulative:
            out.append((0.0, cumulative))
        for idx in sorted(snap["counts"]):
            cumulative += snap["counts"][idx]
            out.append((bucket_bounds(idx)[1], cumulative))
        return out

    def __repr__(self) -> str:    # pragma: no cover - debugging aid
        return (f"Histogram({self.name!r}, n={self.count}, "
                f"p50={self.quantile(0.5):.3f})")


def percentiles(values: Iterable[float]) -> Dict[str, float]:
    """One-shot p50/p90/p99 of *values* through the shared histogram
    estimator — what the benchmarks use instead of ad-hoc
    ``statistics.quantiles`` so committed baselines and live ``*.hist.*``
    metrics are computed identically."""
    hist = Histogram()
    hist.record_many(values)
    return {label: hist.quantile(q) for q, label in QUANTILES}


class HistogramSet:
    """A named collection of histograms with one flat metrics view.

    Names follow the documented namespace
    ``<subsystem>.hist.<measurement>`` (e.g.
    ``serve.hist.request_ms``); :meth:`metrics` flattens every member
    through :meth:`Histogram.metrics`, which is the shape the registry
    snapshot and the trace exporters embed.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._hists: Dict[str, Histogram] = {}

    def get(self, name: str) -> Optional[Histogram]:
        with self._lock:
            return self._hists.get(name)

    def get_or_create(self, name: str) -> Histogram:
        with self._lock:
            hist = self._hists.get(name)
            if hist is None:
                hist = Histogram(name)
                self._hists[name] = hist
            return hist

    def observe(self, name: str, value: float) -> None:
        self.get_or_create(name).record(value)

    def histograms(self) -> Dict[str, Histogram]:
        with self._lock:
            return dict(self._hists)

    def metrics(self) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for name, hist in sorted(self.histograms().items()):
            out.update(hist.metrics())
        return out

    def clear(self) -> None:
        with self._lock:
            self._hists.clear()


# --------------------------------------------------------------------------
# Process-wide default set
# --------------------------------------------------------------------------

_default: Optional[HistogramSet] = None
_default_lock = threading.Lock()


def get_histograms() -> HistogramSet:
    """The process-wide histogram set.  On first use it is registered
    as the ``"hist"`` source of the default metrics registry, so any
    snapshot taken afterwards carries the ``*.hist.*`` keys."""
    global _default
    with _default_lock:
        if _default is None:
            _default = HistogramSet()
            from .metrics import get_registry
            get_registry().register_source("hist", _default.metrics)
        return _default


def set_histograms(hists: Optional[HistogramSet]) -> None:
    """Replace (or with ``None``, reset) the process-wide set.  The
    next :func:`get_histograms` re-registers the ``"hist"`` source."""
    global _default
    with _default_lock:
        _default = hists
        if hists is not None:
            from .metrics import get_registry
            get_registry().register_source("hist", hists.metrics)


def observe(name: str, value: float) -> None:
    """Record *value* into the process-wide histogram *name* — the
    one-line hot-path hook the serve/scheduler/cache layers call."""
    get_histograms().observe(name, value)
