"""Structured JSON event logging for the request path.

Spans answer "where did the time go"; the structured log answers "what
happened to request X" — one JSON object per line, one line per
lifecycle edge, every line carrying the ``request_id`` minted at serve
intake, so an operator can grep a single request end-to-end and join it
against the trace (the same id rides the ``serve.request`` /
``serve.plan`` / ``serve.exec`` span attrs).

The emitter mirrors the tracer's contract exactly:

* **opt-in** — with no sink installed :func:`log_event` is a no-op that
  never formats anything, so the hot path pays one ``None`` check;
* programmatic — ``with logging_to(buffer): ...`` (tests), or
  :func:`enable`/:func:`disable` for long-running hosts;
* environment — ``REPRO_LOG=1`` logs to stderr,
  ``REPRO_LOG_OUT=/path/file.jsonl`` appends to a file instead —
  the toggle pair mirrors ``REPRO_TRACE``/``REPRO_TRACE_OUT``.

Event names are dot-scoped under ``request.*`` and enumerated in
:data:`EVENTS` — the catalogue docs/OBSERVABILITY.md documents and the
serve tests assert against.  Fields are flat JSON scalars; ``ts`` is
Unix time, ``thread`` is the emitting thread's name.
"""

from __future__ import annotations

import io
import json
import os
import threading
import time
import uuid
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, TextIO

#: the structured-log event catalogue (docs/OBSERVABILITY.md).  Every
#: ``log_event`` call site uses one of these names; the serve tests and
#: the log-validating assertions reject events outside the catalogue.
EVENTS = (
    "request.received",    # accepted into the queue
    "request.shed",        # refused: queue at capacity (429)
    "request.rejected",    # refused: draining (503) or malformed (400)
    "request.grouped",     # dispatcher coalesced a fingerprint group
    "request.dispatched",  # a worker started executing the group
    "request.completed",   # a result (success or error doc) delivered
    "request.timeout",     # waiter deadline expired (504)
    "request.cancelled",   # group skipped: every waiter abandoned
    "request.drained",     # flushed during graceful shutdown (503)
    "serve.started",       # service worker threads are up
    "serve.draining",      # drain began
)


class EventLog:
    """A line-oriented JSON sink; all writes are serialised."""

    def __init__(self, stream: TextIO):
        self.stream = stream
        self._lock = threading.Lock()

    def emit(self, event: str, fields: Dict[str, Any]) -> None:
        doc: Dict[str, Any] = {"ts": round(time.time(), 6),
                               "event": event,
                               "thread": threading.current_thread().name}
        for key, value in fields.items():
            if value is None or isinstance(value, (str, int, float, bool)):
                doc[key] = value
            elif isinstance(value, (list, tuple)):
                doc[key] = [str(v) if not isinstance(
                    v, (str, int, float, bool)) else v for v in value]
            else:
                doc[key] = str(value)
        line = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        with self._lock:
            try:
                self.stream.write(line + "\n")
                self.stream.flush()
            except (OSError, ValueError):   # closed/broken sink must
                pass                        # never take down a request


_active: Optional[EventLog] = None
_install_lock = threading.Lock()


def enabled() -> bool:
    return _active is not None


def get_log() -> Optional[EventLog]:
    return _active


def enable(stream: Optional[TextIO] = None) -> EventLog:
    """Install a process-wide event log (default sink: stderr)."""
    global _active
    import sys
    with _install_lock:
        log = EventLog(stream if stream is not None else sys.stderr)
        _active = log
        return log


def disable() -> Optional[EventLog]:
    global _active
    with _install_lock:
        log, _active = _active, None
        return log


@contextmanager
def logging_to(stream: Optional[TextIO] = None
               ) -> Iterator[EventLog]:
    """Collect events for the duration of the block (tests pass a
    ``StringIO``); restores whatever sink was active before::

        with logging_to(io.StringIO()) as log:
            service.handle(body)
        events = [json.loads(l) for l in log.stream.getvalue().splitlines()]
    """
    global _active
    with _install_lock:
        previous = _active
        log = EventLog(stream if stream is not None else io.StringIO())
        _active = log
    try:
        yield log
    finally:
        with _install_lock:
            _active = previous


def log_event(event: str, **fields: Any) -> None:
    """Emit one structured event if a sink is installed (no-op cost:
    a single global read when logging is off)."""
    log = _active
    if log is None:
        return
    log.emit(event, fields)


def new_request_id() -> str:
    """A fresh request id: 16 hex chars, unique per process lifetime
    for any realistic request volume, cheap to grep."""
    return uuid.uuid4().hex[:16]


# --------------------------------------------------------------------------
# Environment toggle (REPRO_LOG / REPRO_LOG_OUT)
# --------------------------------------------------------------------------


def _truthy(value: str) -> bool:
    return value.strip().lower() not in ("", "0", "false", "no", "off")


def _env_setup() -> None:
    out = os.environ.get("REPRO_LOG_OUT", "").strip()
    if not _truthy(os.environ.get("REPRO_LOG", "")) and not out:
        return
    if out:
        try:
            stream = open(out, "a", encoding="utf-8")
        except OSError:
            return
        import atexit
        atexit.register(stream.close)
        enable(stream)
    else:
        enable()


_env_setup()
