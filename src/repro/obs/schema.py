"""Schemas: the compile stage-timings contract and the trace-export shape.

Two contracts live here so every producer and consumer shares one
definition:

* **Stage timings** — ``CompiledKernel.timings`` carries one key per
  pipeline stage (:data:`STAGE_KEYS`) plus ``total_ms``, on **every**
  compile.  Stages a path skipped (codegen on a cache hit, cache lookup
  without a cache) are present as ``0.0``.  Historically the cache-hit
  and fresh-compile paths emitted disjoint key sets, so consumers that
  summed stage keys against ``total_ms`` silently disagreed between the
  two paths — :func:`normalize_stage_timings` is what makes that
  impossible now, and a differential regression test pins it.

* **Chrome trace** — :func:`validate_chrome_trace` checks an exported
  document well-formedly references parents, nests child inside parent
  intervals and keeps per-thread spans strictly stack-like.  CI runs it
  over ``repro trace`` output for a builtin filter and a graph example.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

#: Every per-stage key of one compile, in pipeline order.  The mapping
#: value is the span name the stage is recorded under — stage timings
#: are views over those spans.
STAGE_SPANS: Dict[str, str] = {
    "frontend_ms": "compile.frontend",
    "cache_lookup_ms": "compile.cache_lookup",
    "codegen_provisional_ms": "compile.codegen_provisional",
    "resources_ms": "compile.resources",
    "select_ms": "compile.select",
    "codegen_final_ms": "compile.codegen_final",
    "store_ms": "compile.store",
    "lint_ms": "compile.lint",
}

STAGE_KEYS = tuple(STAGE_SPANS)

#: The complete key set of ``CompiledKernel.timings``.
TIMING_KEYS = STAGE_KEYS + ("total_ms",)

#: Span names the native graph tier emits
#: (:mod:`repro.runtime.native_graph`): ``native.compile`` wraps artifact
#: resolution (workdir probe, artifact-store fetch or a fresh C compile
#: — its ``origin`` attr says which) and ``native.exec`` wraps one
#: compiled segment's execution (attrs: ``segment``, ``nodes``).
NATIVE_SPANS = ("native.compile", "native.exec")

#: Span names the serve tier emits (:mod:`repro.serve`):
#: ``serve.request`` wraps one HTTP request in its handler thread
#: (attrs: ``path``, ``http_status``, ``fingerprint``); ``serve.plan``
#: and ``serve.exec`` wrap planning and execution of one deduplicated
#: request group in a worker thread (attrs: ``fingerprint``,
#: ``group``).  The worker spans are deliberately top-level rather than
#: children of ``serve.request`` — a waiter may time out (closing its
#: request span) while the shared execution continues, and a child
#: outliving its parent would violate the containment rule
#: :func:`validate_chrome_trace` enforces.  Correlate by the
#: ``fingerprint`` attr instead.
SERVE_SPANS = ("serve.request", "serve.plan", "serve.exec")

#: Span names the abstract interpreter emits (:mod:`repro.lint.absint`
#: and :mod:`repro.lint.footprint`): ``absint.fixpoint`` wraps one
#: fixpoint run over a kernel CFG (attrs: ``kernel``) and
#: ``absint.footprint`` wraps the derived access-footprint computation.
ABSINT_SPANS = ("absint.fixpoint", "absint.footprint")

#: Span names the auto-tuner emits (:mod:`repro.mapping.tuner` and the
#: compile driver's tuned-database consultation, docs/TUNING.md):
#: ``tune.search`` wraps one :func:`~repro.mapping.tuner.tune_kernel`
#: session (attrs: ``kernel``, ``engine``, ``signal``, ``budget``,
#: ``trials``, ``best``), ``tune.trial`` one measured configuration
#: (attrs: ``block``, ``signal``, ``score_ms``), and ``tune.lookup``
#: one tuned-database consultation inside a compile (attrs: ``kernel``,
#: ``engine``, ``hit``).
TUNE_SPANS = ("tune.search", "tune.trial", "tune.lookup")

#: Every metrics-registry key namespace a snapshot may carry
#: (docs/OBSERVABILITY.md).  Keys are ``<namespace>.<rest>``; histogram
#: keys additionally carry ``.hist.`` as their second dotted component
#: (``serve.hist.request_ms.p99``).  ``scripts/validate_trace.py``
#: rejects embedded metrics snapshots whose keys fall outside this
#: table — an undocumented metric cannot ship silently.
METRIC_NAMESPACES = ("cache", "pool", "graph", "serve", "native",
                     "lint", "tuner")


def validate_metric_keys(metrics: Mapping[str, Any]) -> List[str]:
    """Return a list of problems with a flat metrics mapping (empty =
    valid): every key must start with a documented namespace prefix,
    and ``*.hist.*`` keys must end in a known statistic suffix."""
    problems: List[str] = []
    hist_stats = ("count", "sum", "min", "max", "p50", "p90", "p99")
    for key in metrics:
        parts = key.split(".")
        if parts[0] not in METRIC_NAMESPACES:
            problems.append(
                f"metric {key!r} outside documented namespaces "
                f"{METRIC_NAMESPACES}")
            continue
        if len(parts) > 1 and parts[1] == "hist" \
                and parts[-1] not in hist_stats:
            problems.append(
                f"histogram metric {key!r} has unknown statistic "
                f"{parts[-1]!r} (expected one of {hist_stats})")
    return problems


def normalize_stage_timings(timings: Mapping[str, float]
                            ) -> Dict[str, float]:
    """Project *timings* onto the full schema: every stage key present,
    skipped stages as ``0.0``, key order fixed to pipeline order."""
    out = {key: float(timings.get(key, 0.0)) for key in STAGE_KEYS}
    out["total_ms"] = float(timings.get("total_ms", 0.0))
    return out


def stage_sum_ms(timings: Mapping[str, float]) -> float:
    """Sum of the per-stage keys (excludes ``total_ms``)."""
    return sum(float(timings.get(key, 0.0)) for key in STAGE_KEYS)


# --------------------------------------------------------------------------
# Chrome-trace document validation
# --------------------------------------------------------------------------

_REQUIRED_EVENT_FIELDS = ("name", "ph", "ts", "pid", "tid")

#: Interval containment tolerance in microseconds — parent and child end
#: timestamps are captured by separate perf_counter reads.
_EPSILON_US = 50.0


def validate_chrome_trace(doc: Any) -> List[str]:
    """Return a list of problems with *doc* (empty = valid).

    Checks structural shape (``traceEvents`` with the JSON-event-format
    required fields), span-id uniqueness, parent references, parent
    interval containment, and per-thread stack discipline (two spans on
    one thread either nest or are disjoint — an interleaved overlap
    means the per-thread stacks were corrupted).
    """
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["document is not a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list traceEvents"]

    spans: Dict[int, Dict[str, Any]] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i} is not an object")
            continue
        missing = [f for f in _REQUIRED_EVENT_FIELDS if f not in ev]
        if missing:
            problems.append(f"event {i} missing fields {missing}")
            continue
        if ev["ph"] == "M":
            continue                      # metadata (thread names)
        if ev["ph"] != "X":
            problems.append(f"event {i} has unsupported ph {ev['ph']!r}")
            continue
        if not isinstance(ev.get("dur"), (int, float)) or ev["dur"] < 0:
            problems.append(f"event {i} ({ev['name']}) has bad dur")
            continue
        args = ev.get("args", {})
        sid = args.get("span_id")
        if not isinstance(sid, int):
            problems.append(f"event {i} ({ev['name']}) lacks args.span_id")
            continue
        if sid in spans:
            problems.append(f"duplicate span_id {sid}")
            continue
        spans[sid] = ev

    for sid, ev in spans.items():
        parent_id = ev.get("args", {}).get("parent_id")
        if parent_id is None:
            continue
        parent = spans.get(parent_id)
        if parent is None:
            problems.append(
                f"span {sid} ({ev['name']}) references missing parent "
                f"{parent_id}")
            continue
        if ev["ts"] < parent["ts"] - _EPSILON_US or \
                ev["ts"] + ev["dur"] > \
                parent["ts"] + parent["dur"] + _EPSILON_US:
            problems.append(
                f"span {sid} ({ev['name']}) escapes parent interval "
                f"{parent_id} ({parent['name']})")

    by_tid: Dict[Any, List[Dict[str, Any]]] = {}
    for ev in spans.values():
        by_tid.setdefault(ev["tid"], []).append(ev)
    for tid, evs in by_tid.items():
        evs.sort(key=lambda e: (e["ts"], e["args"]["span_id"]))
        open_stack: List[Dict[str, Any]] = []
        for ev in evs:
            while open_stack and \
                    open_stack[-1]["ts"] + open_stack[-1]["dur"] \
                    <= ev["ts"] + _EPSILON_US:
                open_stack.pop()
            if open_stack:
                top = open_stack[-1]
                if ev["ts"] + ev["dur"] > \
                        top["ts"] + top["dur"] + _EPSILON_US:
                    problems.append(
                        f"thread {tid}: span "
                        f"{ev['args']['span_id']} ({ev['name']}) "
                        f"interleaves with {top['args']['span_id']} "
                        f"({top['name']}) instead of nesting")
            open_stack.append(ev)
    return problems
