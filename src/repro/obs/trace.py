"""Hierarchical, thread-safe span tracing for the whole runtime.

Every stage the compilation driver, the cache, the graph scheduler and
the simulator execute is wrapped in a :func:`span`::

    with span("compile.frontend") as sp:
        ...                       # do the work
    timings["frontend_ms"] = sp.duration_ms

Spans nest through a *per-thread* stack: a span opened while another is
active on the same thread becomes its child.  Work fanned out to a
:class:`~concurrent.futures.ThreadPoolExecutor` keeps its lineage by
capturing :func:`current_id` on the submitting thread and re-entering it
in the worker with :func:`child_of` — the per-thread stacks are stitched
back together by parent id, so a Chrome-trace export shows the graph
scheduler's branches and the exploration chunks under the spans that
spawned them.  (Process pools cannot share the tracer; spans produced in
child processes are simply not recorded — see docs/OBSERVABILITY.md.)

Tracing is **opt-in**: with no active :class:`Tracer` a :func:`span`
still measures its own duration (the compile driver's stage timings are
views over spans and must work unconditionally) but records nothing and
never touches shared state.  Enable collection either

* programmatically — ``with tracing() as tracer: ...``, or
* process-wide — ``REPRO_TRACE=1`` in the environment, optionally with
  ``REPRO_TRACE_OUT=/path/trace.json`` to write a Chrome trace at exit.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional


class Span:
    """One timed, named region of work.

    ``start_us``/``end_us`` are microseconds relative to the recording
    tracer's epoch (absolute ``perf_counter`` microseconds when the span
    ran unrecorded).  ``parent_id`` is the ``span_id`` of the enclosing
    span — possibly one running on a different thread (see
    :func:`child_of`).
    """

    __slots__ = ("name", "span_id", "parent_id", "thread_id",
                 "start_us", "end_us", "attrs")

    def __init__(self, name: str, span_id: int,
                 parent_id: Optional[int], thread_id: int,
                 start_us: float, attrs: Dict[str, Any]):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.thread_id = thread_id
        self.start_us = start_us
        self.end_us: Optional[float] = None
        self.attrs = attrs

    @property
    def duration_us(self) -> float:
        if self.end_us is None:
            return 0.0
        return self.end_us - self.start_us

    @property
    def duration_ms(self) -> float:
        return self.duration_us / 1e3

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread_id": self.thread_id,
            "start_us": self.start_us,
            "end_us": self.end_us,
            "duration_ms": self.duration_ms,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:   # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"parent={self.parent_id}, {self.duration_ms:.3f} ms)")


class Tracer:
    """Collects finished spans; all methods are thread-safe.

    Span ids are assigned at span *start* from one shared counter, so
    sorting the collected spans by ``(start_us, span_id)`` reproduces
    creation order deterministically — the property the golden-trace
    test pins.
    """

    def __init__(self, name: str = "repro"):
        self.name = name
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._next_id = 1
        self._epoch = time.perf_counter()

    def now_us(self) -> float:
        return (time.perf_counter() - self._epoch) * 1e6

    def next_id(self) -> int:
        with self._lock:
            sid = self._next_id
            self._next_id += 1
            return sid

    def record(self, sp: Span) -> None:
        with self._lock:
            self._spans.append(sp)

    def spans(self) -> List[Span]:
        """Finished spans, in deterministic creation order."""
        with self._lock:
            out = list(self._spans)
        out.sort(key=lambda s: (s.start_us, s.span_id))
        return out

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


# --------------------------------------------------------------------------
# Module state: the active tracer + per-thread span stacks
# --------------------------------------------------------------------------

_active: Optional[Tracer] = None
_install_lock = threading.Lock()
_state = threading.local()


def _stack() -> List[Span]:
    stack = getattr(_state, "stack", None)
    if stack is None:
        stack = []
        _state.stack = stack
    return stack


def get_tracer() -> Optional[Tracer]:
    """The currently installed tracer, or ``None`` when disabled."""
    return _active


def enabled() -> bool:
    return _active is not None


def enable(tracer: Optional[Tracer] = None) -> Tracer:
    """Install *tracer* (or a fresh one) as the process-wide collector."""
    global _active
    with _install_lock:
        if tracer is None:
            tracer = Tracer()
        _active = tracer
        return tracer


def disable() -> Optional[Tracer]:
    """Uninstall and return the active tracer (``None`` if none was)."""
    global _active
    with _install_lock:
        tracer, _active = _active, None
        return tracer


@contextmanager
def tracing(tracer: Optional[Tracer] = None) -> Iterator[Tracer]:
    """Collect spans for the duration of the block::

        with tracing() as tracer:
            compile_kernel(...)
        chrome_trace(tracer)

    Restores whatever tracer (or lack of one) was active before.
    """
    global _active
    with _install_lock:
        previous = _active
        if tracer is None:
            tracer = Tracer()
        _active = tracer
    try:
        yield tracer
    finally:
        with _install_lock:
            _active = previous


def current_id() -> Optional[int]:
    """Span id of this thread's innermost open span (for stitching)."""
    stack = _stack()
    if stack:
        return stack[-1].span_id
    return getattr(_state, "adopted", None)


@contextmanager
def child_of(parent_id: Optional[int]) -> Iterator[None]:
    """Adopt *parent_id* as this thread's span parent.

    Used by thread-pool workers: the submitter captures
    :func:`current_id` and the worker wraps its work in
    ``child_of(token)`` so its spans parent across the thread boundary.
    A ``None`` token is a no-op, which lets call sites stitch
    unconditionally.
    """
    prev = getattr(_state, "adopted", None)
    _state.adopted = parent_id
    try:
        yield
    finally:
        _state.adopted = prev


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Span]:
    """Time a named region; record it if a tracer is active.

    Always yields a :class:`Span` whose ``duration_ms`` is valid after
    the block — disabled tracing only skips collection, never timing,
    because ``CompiledKernel.timings`` is a view over these spans.
    """
    tracer = _active
    if tracer is None:
        sp = Span(name, 0, None, threading.get_ident(),
                  time.perf_counter() * 1e6, attrs)
        try:
            yield sp
        finally:
            sp.end_us = time.perf_counter() * 1e6
        return

    stack = _stack()
    parent = stack[-1].span_id if stack \
        else getattr(_state, "adopted", None)
    sp = Span(name, tracer.next_id(), parent, threading.get_ident(),
              tracer.now_us(), attrs)
    stack.append(sp)
    try:
        yield sp
    finally:
        sp.end_us = tracer.now_us()
        # tolerate a tracer swapped mid-span: unwind by identity
        if stack and stack[-1] is sp:
            stack.pop()
        elif sp in stack:           # pragma: no cover - defensive
            stack.remove(sp)
        tracer.record(sp)


# --------------------------------------------------------------------------
# Environment toggle (REPRO_TRACE / REPRO_TRACE_OUT)
# --------------------------------------------------------------------------


def _truthy(value: str) -> bool:
    return value.strip().lower() not in ("", "0", "false", "no", "off")


def _env_setup() -> None:
    if not _truthy(os.environ.get("REPRO_TRACE", "")):
        return
    tracer = enable()
    out = os.environ.get("REPRO_TRACE_OUT", "").strip()
    if out:
        import atexit

        def _write() -> None:
            from .export import write_chrome_trace
            try:
                write_chrome_trace(tracer, out)
            except OSError:      # pragma: no cover - best effort at exit
                pass

        atexit.register(_write)


_env_setup()
