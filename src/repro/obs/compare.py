"""The perf-regression sentinel: compare ``BENCH_*.json`` documents.

The committed baselines (``BENCH_native_graph.json``,
``BENCH_serve.json``, ``BENCH_pipeline_graph.json``) pin what the warm
paths cost when the PR that shipped them was merged.  This module
compares a freshly generated document against a committed one, field by
field, and reports **regressions** — the closing-the-loop step that
makes a silent warm-path slowdown impossible to merge: CI runs the
benchmarks, calls this comparison with generous noise thresholds, and
fails on any regression (``scripts/bench_compare.py`` / ``repro perf``).

What is compared:

* **headline fields** — every numeric key present in both documents.
  Direction is inferred from the key name (:func:`metric_direction`):
  ``*_ms``/``*_bytes``/``*_misses``/``*_allocs`` regress *upward*,
  ``*_rps``/``*_rate``/``*_hits``/``*over*`` regress *downward*;
  anything else is informational only (sizes, counts);
* **per-stage span totals** — ``stages.<span>.total_ms`` for spans in
  both documents, so "the headline survived but compile.lint doubled"
  is still caught.

A change only counts as a regression when it exceeds **both** gates:

* the *relative threshold* (``--threshold 0.25`` = 25 % worse), and
* the *noise floor* — an absolute delta (milliseconds for ``*_ms``
  keys) below which run-to-run jitter is indistinguishable from a real
  change, so a 0.3 ms → 0.5 ms stage never fails a build.

Documents must carry ``schema_version ==`` :data:`BENCH_SCHEMA_VERSION`
(benchmarks/common.py stamps it); a stale or missing version is a hard
failure, not a silent fuzzy match across incompatible formats.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Any, Dict, List, Optional, Sequence

#: bumped when the BENCH_*.json document shape changes incompatibly;
#: stamped by benchmarks/common.write_bench_json and enforced here
BENCH_SCHEMA_VERSION = 2

#: the benchmarks with committed baselines, in comparison order
DEFAULT_BENCHMARKS = ("native_graph", "pipeline_graph", "serve",
                      "autotune")

LOWER_IS_BETTER = ("_ms", "_bytes", "_misses", "_allocs")
HIGHER_IS_BETTER = ("_rps", "_rate", "_hits", "_rps_warm")


class CompareError(ValueError):
    """A document that cannot be compared (unreadable, wrong schema)."""


def metric_direction(key: str) -> Optional[str]:
    """``"lower"``/``"higher"`` = which way is better, ``None`` =
    informational (never a regression)."""
    if key.endswith(LOWER_IS_BETTER):
        return "lower"
    if key.endswith(HIGHER_IS_BETTER) or "_over_" in key:
        return "higher"
    return None


@dataclasses.dataclass
class Entry:
    """One compared metric."""

    metric: str
    baseline: float
    current: float
    #: "ok" | "regressed" | "improved" | "info"
    status: str
    #: signed relative change, positive = current larger
    change: float

    def as_dict(self) -> Dict[str, Any]:
        return {
            "metric": self.metric,
            "baseline": round(self.baseline, 6),
            "current": round(self.current, 6),
            "change_pct": round(self.change * 100.0, 2),
            "status": self.status,
        }


@dataclasses.dataclass
class BenchComparison:
    """The comparison of one benchmark document pair."""

    benchmark: str
    entries: List[Entry] = dataclasses.field(default_factory=list)
    #: schema/shape problems; any problem fails the comparison
    problems: List[str] = dataclasses.field(default_factory=list)

    @property
    def regressions(self) -> List[Entry]:
        return [e for e in self.entries if e.status == "regressed"]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.problems

    def as_dict(self) -> Dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "ok": self.ok,
            "problems": list(self.problems),
            "entries": [e.as_dict() for e in self.entries],
        }

    def to_text(self) -> str:
        lines = [f"== {self.benchmark}: "
                 f"{'ok' if self.ok else 'REGRESSED'} =="]
        for problem in self.problems:
            lines.append(f"  !! {problem}")
        marks = {"regressed": "!!", "improved": "++", "ok": "  ",
                 "info": "--"}
        for e in self.entries:
            if e.status == "info":
                continue
            lines.append(
                f"  {marks[e.status]} {e.metric:<44} "
                f"{e.baseline:>12.3f} -> {e.current:>12.3f}  "
                f"({e.change * 100.0:+7.1f}%)")
        return "\n".join(lines)


def _check_schema(doc: Any, label: str, problems: List[str]) -> bool:
    if not isinstance(doc, dict):
        problems.append(f"{label}: not a JSON object")
        return False
    version = doc.get("schema_version")
    if version != BENCH_SCHEMA_VERSION:
        problems.append(
            f"{label}: schema_version {version!r} != "
            f"{BENCH_SCHEMA_VERSION} (regenerate with --json)")
        return False
    return True


def _compare_one(key: str, base: float, cur: float, direction: str,
                 threshold: float, noise_floor: float) -> Entry:
    if direction == "higher":
        # normalise: compare inverted so "regressed" always means the
        # current value moved the wrong way past both gates
        worse = cur < base
        rel = (cur - base) / base if base else 0.0
        delta = base - cur
        regressed = (worse and base > 0
                     and cur < base * (1.0 - threshold)
                     and delta > noise_floor)
        improved = base > 0 and cur > base * (1.0 + threshold) \
            and (cur - base) > noise_floor
    else:
        rel = (cur - base) / base if base else (1.0 if cur else 0.0)
        delta = cur - base
        regressed = cur > base * (1.0 + threshold) and delta > noise_floor
        improved = base > 0 and cur < base * (1.0 - threshold) \
            and (base - cur) > noise_floor
    status = ("regressed" if regressed
              else "improved" if improved else "ok")
    return Entry(metric=key, baseline=float(base), current=float(cur),
                 status=status, change=rel)


def compare_docs(baseline: Dict[str, Any], current: Dict[str, Any],
                 threshold: float = 0.25,
                 noise_floor_ms: float = 5.0,
                 stage_threshold: Optional[float] = None,
                 ) -> BenchComparison:
    """Compare two ``BENCH_*.json`` documents.

    *threshold* is the relative headline gate (0.25 = 25 % worse);
    *noise_floor_ms* the absolute-delta gate for ``*_ms`` metrics
    (non-ms metrics use a relative-only gate); *stage_threshold*
    defaults to the headline threshold.
    """
    name = (baseline.get("benchmark")
            if isinstance(baseline, dict) else None) or "?"
    cmp = BenchComparison(benchmark=str(name))
    if not _check_schema(baseline, "baseline", cmp.problems):
        return cmp
    if not _check_schema(current, "current", cmp.problems):
        return cmp
    if baseline.get("benchmark") != current.get("benchmark"):
        cmp.problems.append(
            f"benchmark mismatch: baseline "
            f"{baseline.get('benchmark')!r} vs current "
            f"{current.get('benchmark')!r}")
        return cmp
    if stage_threshold is None:
        stage_threshold = threshold

    base_head = baseline.get("headline") or {}
    cur_head = current.get("headline") or {}
    for key in sorted(base_head):
        base, cur = base_head[key], cur_head.get(key)
        if (isinstance(base, bool) or isinstance(cur, bool)
                or not isinstance(base, (int, float))
                or not isinstance(cur, (int, float))):
            continue
        direction = metric_direction(key)
        if direction is None:
            cmp.entries.append(Entry(key, float(base), float(cur),
                                     "info", 0.0))
            continue
        floor = noise_floor_ms if key.endswith("_ms") else 0.0
        cmp.entries.append(_compare_one(
            f"headline.{key}", base, cur, direction, threshold, floor))

    base_stages = baseline.get("stages") or {}
    cur_stages = current.get("stages") or {}
    for span in sorted(base_stages):
        if span not in cur_stages:
            continue
        base = base_stages[span].get("total_ms")
        cur = cur_stages[span].get("total_ms")
        if not isinstance(base, (int, float)) \
                or not isinstance(cur, (int, float)):
            continue
        cmp.entries.append(_compare_one(
            f"stages.{span}.total_ms", base, cur, "lower",
            stage_threshold, noise_floor_ms))
    return cmp


def load_bench(path: str) -> Dict[str, Any]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError) as exc:
        raise CompareError(f"unreadable benchmark document "
                           f"{path}: {exc}") from None


def compare_files(baseline_path: str, current_path: str,
                  **kwargs: Any) -> BenchComparison:
    return compare_docs(load_bench(baseline_path),
                        load_bench(current_path), **kwargs)


def run_compare(baseline_dir: str, current_dir: str,
                names: Sequence[str] = DEFAULT_BENCHMARKS,
                threshold: float = 0.25,
                noise_floor_ms: float = 5.0,
                stage_threshold: Optional[float] = None,
                json_out: Optional[str] = None,
                allow_missing: bool = False) -> int:
    """Compare ``BENCH_<name>.json`` in *current_dir* against
    *baseline_dir* for every name; print a report; return the exit
    code (0 = no regressions).  With *json_out*, also write the full
    machine-readable report there."""
    comparisons: List[BenchComparison] = []
    failed = False
    for name in names:
        base_path = os.path.join(baseline_dir, f"BENCH_{name}.json")
        cur_path = os.path.join(current_dir, f"BENCH_{name}.json")
        missing = [p for p in (base_path, cur_path)
                   if not os.path.exists(p)]
        if missing:
            if allow_missing:
                print(f"== {name}: skipped (missing "
                      f"{', '.join(missing)}) ==")
                continue
            cmp = BenchComparison(benchmark=name, problems=[
                f"missing document(s): {', '.join(missing)}"])
            comparisons.append(cmp)
            print(cmp.to_text())
            failed = True
            continue
        try:
            cmp = compare_files(base_path, cur_path,
                                threshold=threshold,
                                noise_floor_ms=noise_floor_ms,
                                stage_threshold=stage_threshold)
        except CompareError as exc:
            cmp = BenchComparison(benchmark=name, problems=[str(exc)])
        comparisons.append(cmp)
        print(cmp.to_text())
        if not cmp.ok:
            failed = True
    if json_out:
        report = {
            "schema_version": BENCH_SCHEMA_VERSION,
            "threshold": threshold,
            "noise_floor_ms": noise_floor_ms,
            "ok": not failed,
            "comparisons": [c.as_dict() for c in comparisons],
        }
        with open(json_out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report written to {json_out}")
    print("perf sentinel: " + ("ok" if not failed else "REGRESSED"))
    return 1 if failed else 0
