"""Prometheus text-exposition rendering of the metrics registry.

``GET /metrics?format=prometheus`` on a running ``repro serve`` answers
with this rendering (text/plain, exposition format version 0.0.4); the
default JSON answer is unchanged.  The same snapshot the JSON endpoint
and the trace exporters embed is rendered, so the two formats can never
disagree about a value.

Mapping rules:

* every counter/gauge key becomes ``repro_`` + the key with each
  non-alphanumeric run collapsed to ``_`` (``cache.ir.hit_rate`` →
  ``repro_cache_ir_hit_rate``), emitted as a ``gauge`` — the registry
  does not distinguish monotone counters from gauges, and a gauge is
  the honest common denominator;
* every :class:`~repro.obs.hist.Histogram` is emitted as a native
  Prometheus ``histogram``: cumulative ``_bucket{le="..."}`` series in
  ascending bound order closed by ``le="+Inf"``, plus ``_sum`` and
  ``_count`` (``serve.hist.request_ms`` →
  ``repro_serve_hist_request_ms_bucket`` …).  The flattened
  ``*.hist.*`` gauge keys are *excluded* from the gauge section — the
  suffix ``.count`` would otherwise collide with the histogram's own
  ``_count`` sample;
* non-numeric values are skipped (Prometheus has no string samples);
* output is deterministic: metric names sorted, one ``# TYPE`` line per
  metric — the golden-output test compares the full document.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, Optional

from .hist import HistogramSet, get_histograms
from .metrics import get_registry

_NAME_CLEAN = re.compile(r"[^a-zA-Z0-9_]+")

#: prefix every exposed metric name carries
PREFIX = "repro_"


def prom_name(key: str) -> str:
    """Canonical Prometheus metric name for a registry *key*."""
    return PREFIX + _NAME_CLEAN.sub("_", key).strip("_")


def _format_value(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _format_bound(bound: float) -> str:
    """``le`` label text: shortest repr round-tripping the bound."""
    return _format_value(round(bound, 9))


def render_prometheus(snapshot: Optional[Dict[str, Dict[str, Any]]] = None,
                      histograms: Optional[HistogramSet] = None) -> str:
    """Render *snapshot* (default: the process registry) and
    *histograms* (default: the process set) as exposition text."""
    if snapshot is None:
        snapshot = get_registry().snapshot()
    if histograms is None:
        histograms = get_histograms()

    # -- scalar gauges: collapse all sources into one key space ---------
    scalars: Dict[str, float] = {}
    for source in sorted(snapshot):
        if source == "hist":
            continue          # rendered natively below
        for key, value in snapshot[source].items():
            if isinstance(value, bool) or not isinstance(value,
                                                         (int, float)):
                continue
            scalars[prom_name(key)] = float(value)

    lines = []
    for name in sorted(scalars):
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_format_value(scalars[name])}")

    # -- native histograms ----------------------------------------------
    for hist_name, hist in sorted(histograms.histograms().items()):
        name = prom_name(hist_name)
        snap = hist.snapshot()
        lines.append(f"# TYPE {name} histogram")
        for bound, cumulative in hist.cumulative_buckets():
            lines.append(f'{name}_bucket{{le="{_format_bound(bound)}"}} '
                         f"{cumulative}")
        lines.append(f'{name}_bucket{{le="+Inf"}} {snap["count"]}')
        lines.append(f"{name}_sum {_format_value(snap['sum'])}")
        lines.append(f"{name}_count {snap['count']}")

    return "\n".join(lines) + "\n"


#: Content-Type a conforming scraper expects
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
