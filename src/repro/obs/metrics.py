"""The unified metrics registry.

Before this module existed, each subsystem kept its own counter bag —
``CacheStats`` on the compilation cache, ``PoolStats`` on the buffer
arena, launch/fusion counts on ``GraphReport`` — with ad-hoc names and
no single place to read them.  Those dataclasses remain the live
counters (their memory layout and increment paths are unchanged), but
each now renders itself into the **one documented namespace** below via
a ``metrics()`` method, and a :class:`MetricsRegistry` aggregates any
number of live sources into a single snapshot that the trace exporters
embed next to the spans.

Canonical key schema (see docs/OBSERVABILITY.md for the full table):

=====================  ====================================================
prefix                 meaning
=====================  ====================================================
``cache.ir.*``         content-addressed artifact store (hits, misses,
                       disk_hits, stores, evictions, disk_writes,
                       hit_rate)
``cache.frontend.*``   pre-parse fingerprint memo (hits, misses, hit_rate)
``pool.*``             buffer arena (naive_bytes, peak_bytes,
                       current_bytes, allocs, reuses, releases)
``graph.*``            scheduler (launches, fused_away, cache_hits,
                       compile_wall_ms, execute_wall_ms, device_ms)
``serve.*``            request service (requests, batched, dedup_hits,
                       queue_depth, shed, completed, errors, timeouts,
                       cancelled, executions, drained)
``native.*``           native JIT tier (compiles, artifact hits)
``*.hist.*``           flattened latency histograms
                       (:mod:`repro.obs.hist`): each histogram
                       ``<subsystem>.hist.<measurement>`` renders
                       ``.count/.sum/.min/.max/.p50/.p90/.p99`` keys —
                       e.g. ``serve.hist.request_ms.p99``.  Registered
                       as the ``"hist"`` source.
=====================  ====================================================

Counter *values* are plain ints/floats; rates are in ``[0, 1]``.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Optional

MetricSource = Callable[[], Dict[str, Any]]


class MetricsRegistry:
    """Aggregates named metric sources into one snapshot.

    A *source* is any zero-argument callable returning a flat
    ``{key: number}`` dict in the canonical namespace — typically the
    bound ``metrics`` method of a live stats object, so a snapshot
    always reflects the current counter values without copying them on
    every increment.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sources: Dict[str, MetricSource] = {}
        self._counters: Dict[str, float] = {}

    # -- sources ------------------------------------------------------------

    def register_source(self, name: str, source: MetricSource) -> None:
        """Attach *source* under *name* (replacing any previous one)."""
        with self._lock:
            self._sources[name] = source

    def unregister_source(self, name: str) -> None:
        with self._lock:
            self._sources.pop(name, None)

    # -- ad-hoc counters ----------------------------------------------------

    def count(self, key: str, value: float = 1) -> None:
        """Increment a registry-owned counter (for call sites without a
        stats object of their own)."""
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    # -- snapshotting -------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """``{source_name: {key: value}}`` for every live source, plus
        registry-owned counters under ``"counters"`` (when any exist)."""
        with self._lock:
            sources = dict(self._sources)
            counters = dict(self._counters)
        out: Dict[str, Dict[str, Any]] = {}
        for name, source in sources.items():
            try:
                out[name] = dict(source())
            except Exception:    # noqa: BLE001 - a dead source must not
                continue         # poison the whole snapshot
        if counters:
            out["counters"] = counters
        return out

    def clear(self) -> None:
        with self._lock:
            self._sources.clear()
            self._counters.clear()


# --------------------------------------------------------------------------
# Process-wide default registry
# --------------------------------------------------------------------------

_registry: Optional[MetricsRegistry] = None
_registry_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide registry the exporters snapshot by default."""
    global _registry
    with _registry_lock:
        if _registry is None:
            _registry = MetricsRegistry()
        return _registry


def set_registry(registry: Optional[MetricsRegistry]) -> None:
    """Replace (or with ``None``, reset) the process-wide registry."""
    global _registry
    with _registry_lock:
        _registry = registry
