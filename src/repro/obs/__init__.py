"""Structured tracing and metrics for the whole runtime
(docs/OBSERVABILITY.md).

* :mod:`repro.obs.trace` — hierarchical spans with per-thread stacks
  stitched across thread-pool boundaries by parent id;
* :mod:`repro.obs.metrics` — the unified counter registry the cache,
  buffer pool and scheduler export into;
* :mod:`repro.obs.export` — Chrome-trace/Perfetto JSON, structured JSON
  and text renderings;
* :mod:`repro.obs.schema` — the stage-timings contract shared by the
  fresh-compile and cache-hit paths, and the trace-document validator.
"""

from .export import (                              # noqa: F401
    chrome_trace,
    json_trace,
    render,
    stage_totals,
    text_summary,
    write_chrome_trace,
)
from .metrics import (                             # noqa: F401
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .schema import (                              # noqa: F401
    STAGE_KEYS,
    STAGE_SPANS,
    TIMING_KEYS,
    normalize_stage_timings,
    stage_sum_ms,
    validate_chrome_trace,
)
from .trace import (                               # noqa: F401
    Span,
    Tracer,
    child_of,
    current_id,
    disable,
    enable,
    enabled,
    get_tracer,
    span,
    tracing,
)
