"""Structured tracing and metrics for the whole runtime
(docs/OBSERVABILITY.md).

* :mod:`repro.obs.trace` — hierarchical spans with per-thread stacks
  stitched across thread-pool boundaries by parent id;
* :mod:`repro.obs.metrics` — the unified counter registry the cache,
  buffer pool and scheduler export into;
* :mod:`repro.obs.export` — Chrome-trace/Perfetto JSON, structured JSON
  and text renderings;
* :mod:`repro.obs.schema` — the stage-timings contract shared by the
  fresh-compile and cache-hit paths, and the trace-document validator;
* :mod:`repro.obs.hist` — thread-safe mergeable log-bucketed latency
  histograms (the ``*.hist.*`` metric namespace);
* :mod:`repro.obs.log` — structured JSON request logging keyed by
  ``request_id``;
* :mod:`repro.obs.prom` — Prometheus text exposition of the registry;
* :mod:`repro.obs.compare` — the BENCH_*.json perf-regression sentinel.
"""

from .compare import (                             # noqa: F401
    BENCH_SCHEMA_VERSION,
    BenchComparison,
    compare_docs,
    compare_files,
    run_compare,
)
from .export import (                              # noqa: F401
    chrome_trace,
    json_trace,
    render,
    stage_totals,
    text_summary,
    write_chrome_trace,
)
from .hist import (                                # noqa: F401
    Histogram,
    HistogramSet,
    get_histograms,
    observe,
    percentiles,
    set_histograms,
)
from .log import (                                 # noqa: F401
    EVENTS,
    EventLog,
    log_event,
    logging_to,
    new_request_id,
)
from .metrics import (                             # noqa: F401
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .prom import render_prometheus                # noqa: F401
from .schema import (                              # noqa: F401
    METRIC_NAMESPACES,
    STAGE_KEYS,
    STAGE_SPANS,
    TIMING_KEYS,
    TUNE_SPANS,
    normalize_stage_timings,
    stage_sum_ms,
    validate_chrome_trace,
    validate_metric_keys,
)
from .trace import (                               # noqa: F401
    Span,
    Tracer,
    child_of,
    current_id,
    disable,
    enable,
    enabled,
    get_tracer,
    span,
    tracing,
)
