"""Trace exporters: Chrome-trace JSON, structured JSON, text summary.

The Chrome format is the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
using complete (``"X"``) events, loadable directly in ``chrome://tracing``
or `Perfetto <https://ui.perfetto.dev>`_.  Span/parent ids travel in
``args`` so tooling (and :func:`repro.obs.schema.validate_chrome_trace`)
can reconstruct the hierarchy exactly; thread idents are remapped to
small stable tids in first-appearance order so two runs of the same
serial workload export byte-comparable structure.

Every exporter accepts the metrics snapshot alongside the spans: Chrome
documents carry it under ``otherData.metrics``, the JSON exporter under
``"metrics"``, and the text summary prints it after the span tree.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Any, Dict, List, Optional

from .metrics import get_registry
from .trace import Span, Tracer


def _metrics_snapshot(metrics: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    if metrics is not None:
        return metrics
    return get_registry().snapshot()


def _tid_mapping(spans: List[Span]) -> Dict[int, int]:
    mapping: Dict[int, int] = {}
    for sp in spans:
        if sp.thread_id not in mapping:
            mapping[sp.thread_id] = len(mapping)
    return mapping


def chrome_trace(tracer: Tracer,
                 metrics: Optional[Dict[str, Any]] = None
                 ) -> Dict[str, Any]:
    """Render *tracer*'s spans as a Chrome-trace document (a dict)."""
    spans = tracer.spans()
    tids = _tid_mapping(spans)
    events: List[Dict[str, Any]] = []
    for ident, tid in tids.items():
        events.append({
            "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
            "ts": 0,
            "args": {"name": "main" if tid == 0 else f"worker-{tid}"},
        })
    for sp in spans:
        args: Dict[str, Any] = {"span_id": sp.span_id}
        if sp.parent_id is not None:
            args["parent_id"] = sp.parent_id
        for key, value in sp.attrs.items():
            if isinstance(value, (str, int, float, bool)) or value is None:
                args[key] = value
            else:
                args[key] = str(value)
        events.append({
            "name": sp.name,
            "cat": sp.name.split(".", 1)[0],
            "ph": "X",
            "ts": round(sp.start_us, 3),
            "dur": round(sp.duration_us, 3),
            "pid": 1,
            "tid": tids[sp.thread_id],
            "args": args,
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "tracer": tracer.name,
            "metrics": _metrics_snapshot(metrics),
        },
    }


def json_trace(tracer: Tracer,
               metrics: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Structured dump: raw spans plus the metrics snapshot."""
    return {
        "tracer": tracer.name,
        "spans": [sp.as_dict() for sp in tracer.spans()],
        "metrics": _metrics_snapshot(metrics),
    }


def text_summary(tracer: Tracer,
                 metrics: Optional[Dict[str, Any]] = None) -> str:
    """Indented span tree with durations, then the metrics snapshot."""
    spans = tracer.spans()
    children: Dict[Optional[int], List[Span]] = {}
    by_id = {sp.span_id: sp for sp in spans}
    for sp in spans:
        parent = sp.parent_id if sp.parent_id in by_id else None
        children.setdefault(parent, []).append(sp)

    lines: List[str] = [f"trace {tracer.name!r}: {len(spans)} spans"]

    def walk(parent: Optional[int], depth: int) -> None:
        for sp in children.get(parent, ()):
            attrs = " ".join(f"{k}={v}" for k, v in sp.attrs.items())
            lines.append(f"{'  ' * (depth + 1)}{sp.name:<32} "
                         f"{sp.duration_ms:>9.3f} ms"
                         + (f"   [{attrs}]" if attrs else ""))
            walk(sp.span_id, depth + 1)

    walk(None, 0)
    snapshot = _metrics_snapshot(metrics)
    if snapshot:
        lines.append("metrics:")
        for source in sorted(snapshot):
            lines.append(f"  {source}:")
            for key in sorted(snapshot[source]):
                value = snapshot[source][key]
                shown = f"{value:.4f}" if isinstance(value, float) \
                    else str(value)
                lines.append(f"    {key:<28} {shown}")
    return "\n".join(lines)


def render(tracer: Tracer, fmt: str = "chrome",
           metrics: Optional[Dict[str, Any]] = None) -> str:
    """Render *tracer* in one of ``chrome`` / ``json`` / ``text``."""
    if fmt == "chrome":
        return json.dumps(chrome_trace(tracer, metrics), indent=1)
    if fmt == "json":
        return json.dumps(json_trace(tracer, metrics), indent=1)
    if fmt == "text":
        return text_summary(tracer, metrics)
    raise ValueError(f"unknown trace format {fmt!r} "
                     "(expected chrome, json or text)")


def write_chrome_trace(tracer: Tracer, path: str,
                       metrics: Optional[Dict[str, Any]] = None) -> str:
    """Atomically write the Chrome-trace document to *path*."""
    doc = chrome_trace(tracer, metrics)
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(suffix=".tmp", dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def stage_totals(tracer: Tracer) -> Dict[str, Dict[str, float]]:
    """Aggregate span durations by name: ``{name: {count, total_ms,
    mean_ms}}`` — the per-stage breakdown benchmark entries embed."""
    agg: Dict[str, Dict[str, float]] = {}
    for sp in tracer.spans():
        entry = agg.setdefault(sp.name, {"count": 0, "total_ms": 0.0})
        entry["count"] += 1
        entry["total_ms"] += sp.duration_ms
    for entry in agg.values():
        entry["mean_ms"] = entry["total_ms"] / entry["count"]
        entry["total_ms"] = round(entry["total_ms"], 4)
        entry["mean_ms"] = round(entry["mean_ms"], 4)
    return agg
