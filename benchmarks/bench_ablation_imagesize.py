"""Ablation: where border specialisation pays — image-size crossover.

The paper evaluates only 4096^2.  This ablation sweeps image sizes for
the worst-case boundary mode (Constant): the benefit of the nine-region
dispatch over inline conditionals should grow as the border-block
fraction shrinks, and collapse for images so small that every block is a
border block (the degenerate layout).
"""

from repro.backends.base import BorderMode
from repro.dsl.boundary import Boundary
from repro.evaluation.variants import VariantSpec, evaluate_bilateral_cell
from repro.backends.border import classify_regions
from repro.reporting.tables import format_table, shape_check

SIZES = [128, 256, 512, 1024, 2048, 4096, 8192]

SPEC = VariantSpec("spec", "generated", use_mask=True)
INLINE = VariantSpec("inline", "manual", use_mask=True)


def run_size_sweep():
    table = {}
    for size in SIZES:
        spec_ms = evaluate_bilateral_cell(
            "Tesla C2050", "cuda", SPEC, Boundary.CONSTANT,
            width=size, height=size)
        inline_ms = evaluate_bilateral_cell(
            "Tesla C2050", "cuda", INLINE, Boundary.CONSTANT,
            width=size, height=size)
        layout = classify_regions(size, size, (128, 1), (13, 13))
        table[f"{size}x{size}"] = {
            "specialized": spec_ms,
            "inline": inline_ms,
            "benefit": inline_ms / spec_ms,
            "border frac": layout.border_block_fraction,
        }
    return table


def test_image_size_crossover(benchmark):
    table = benchmark(run_size_sweep)
    print()
    print(format_table(table,
                       ["specialized", "inline", "benefit",
                        "border frac"],
                       title="Ablation — border specialisation benefit "
                             "vs image size (bilateral 13x13, Constant "
                             "mode, ms)", digits=3))

    failures = []

    def check(name, cond, detail=""):
        print(shape_check(name, cond, detail))
        if not cond:
            failures.append(name)

    benefit = {int(k.split("x")[0]): v["benefit"]
               for k, v in table.items()}
    frac = {int(k.split("x")[0]): v["border frac"]
            for k, v in table.items()}
    check("benefit grows with image size",
          benefit[4096] > benefit[512] > benefit[128],
          f"{benefit[128]:.2f}x -> {benefit[512]:.2f}x -> "
          f"{benefit[4096]:.2f}x")
    check("border fraction shrinks with image size",
          frac[4096] < frac[512] < 1.0)
    check("specialisation never loses",
          all(b >= 0.99 for b in benefit.values()),
          str({k: round(v, 2) for k, v in benefit.items()}))
    check("benefit saturates near the paper's 4096^2 setting",
          abs(benefit[8192] - benefit[4096]) / benefit[4096] < 0.10,
          f"{benefit[4096]:.2f}x vs {benefit[8192]:.2f}x")
    assert not failures, failures
