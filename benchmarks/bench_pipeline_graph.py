"""Pipeline-graph scheduling vs naive per-kernel chaining.

The edge-detection chain (median -> sobel-x || sobel-y -> magnitude ->
scale -> gamma -> threshold) runs two ways over the same frame:

* **naive** — serial, unfused, unpooled: one launch per DSL kernel,
  every intermediate image its own allocation held to the end (exactly
  what the hand-written example chains did);
* **scheduled** — point-op fusion + lifetime-aware buffer pool +
  parallel branches, all compiles through one shared compilation cache.

Headline numbers (asserted under pytest, printed when run directly):

* fewer kernel launches (the point-op tail collapses into one kernel);
* lower peak intermediate bytes (fusion removes buffers outright, the
  pool recycles what is left);
* byte-identical output — the optimisations must be invisible.

Run directly::

    PYTHONPATH=src python benchmarks/bench_pipeline_graph.py [--quick]
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro import (
    Accessor,
    Boundary,
    BoundaryCondition,
    CompilationCache,
    Image,
    IterationSpace,
    Mask,
    PipelineGraph,
)
from repro.data import impulse_noise_image
from repro.filters.median import Median3x3
from repro.filters.point_ops import GammaCorrection, Scale, Threshold
from repro.filters.sobel import (SOBEL_X, SOBEL_Y, GradientMagnitude,
                                 SobelX, SobelY)
from repro.graph import execute_graph

DEVICE = "Tesla C2050"


def build_graph(frame, size):
    """The 7-kernel edge chain over fresh images."""
    src = Image(size, size, float, name="src").set_data(frame)
    den = Image(size, size, float, name="denoised")
    gx = Image(size, size, float, name="grad_x")
    gy = Image(size, size, float, name="grad_y")
    mag = Image(size, size, float, name="magnitude")
    scaled = Image(size, size, float, name="scaled")
    gamma = Image(size, size, float, name="gamma")
    out = Image(size, size, float, name="edges")

    g = PipelineGraph("edge-detection")
    g.add_kernel(Median3x3(IterationSpace(den), Accessor(
        BoundaryCondition(src, 3, 3, Boundary.MIRROR))), name="median",
        device=DEVICE)
    bc = BoundaryCondition(den, 3, 3, Boundary.CLAMP)
    g.add_kernel(SobelX(IterationSpace(gx), Accessor(bc),
                        Mask(3, 3).set(SOBEL_X)), name="sobel_x",
                 device=DEVICE)
    g.add_kernel(SobelY(IterationSpace(gy), Accessor(bc),
                        Mask(3, 3).set(SOBEL_Y)), name="sobel_y",
                 device=DEVICE)
    g.add_kernel(GradientMagnitude(IterationSpace(mag), Accessor(gx),
                                   Accessor(gy)), name="magnitude",
                 device=DEVICE)
    g.add_kernel(Scale(IterationSpace(scaled), Accessor(mag), 0.25),
                 name="scale", device=DEVICE)
    g.add_kernel(GammaCorrection(IterationSpace(gamma), Accessor(scaled),
                                 0.8), name="gamma", device=DEVICE)
    g.add_kernel(Threshold(IterationSpace(out), Accessor(gamma), 0.2),
                 name="threshold", device=DEVICE)
    g.mark_output(out)
    return g, out


def run_naive(frame, size):
    g, out = build_graph(frame, size)
    t0 = time.perf_counter()
    report = execute_graph(g, cache=None, workers=1, fuse=False,
                           pool=False)
    wall = (time.perf_counter() - t0) * 1e3
    return out.get_data().copy(), report, wall


def run_scheduled(frame, size, workers=4):
    g, out = build_graph(frame, size)
    t0 = time.perf_counter()
    report = execute_graph(g, cache=CompilationCache(), workers=workers,
                           fuse=True, pool=True)
    wall = (time.perf_counter() - t0) * 1e3
    return out.get_data().copy(), report, wall


def measure(size=512, workers=4):
    frame = impulse_noise_image(size, size, seed=7, density=0.02)
    naive_out, naive, naive_wall = run_naive(frame, size)
    sched_out, sched, sched_wall = run_scheduled(frame, size, workers)
    assert np.array_equal(naive_out, sched_out), \
        "scheduled pipeline diverged from the naive chain"
    return naive, naive_wall, sched, sched_wall


def report(quick: bool = False, workers: int = 4):
    size = 256 if quick else 512
    naive, naive_wall, sched, sched_wall = measure(size, workers)
    naive_peak = naive.pool.peak_bytes
    sched_peak = sched.pool.peak_bytes
    print(f"edge pipeline, {size}x{size} frame, {workers} workers:")
    print(f"  launches:            {naive.launches} -> {sched.launches} "
          f"({sched.fusion.launches_saved} saved by fusion)")
    print(f"  peak intermediates:  {naive_peak / 1024:.1f} KiB -> "
          f"{sched_peak / 1024:.1f} KiB "
          f"({(naive_peak - sched_peak) / 1024:.1f} KiB saved: "
          f"{sched.fusion.intermediate_bytes_eliminated / 1024:.1f} KiB "
          f"fused away, pool reused {sched.pool.reuses} buffers)")
    print(f"  modelled device time {naive.total_device_ms:.4f} ms -> "
          f"{sched.total_device_ms:.4f} ms")
    print(f"  wall (compile+run):  {naive_wall:.1f} ms -> "
          f"{sched_wall:.1f} ms")
    print("  output: byte-identical")
    return naive, sched


def test_scheduled_pipeline_beats_naive():
    naive, _, sched, _ = measure(size=256)
    assert sched.launches < naive.launches
    assert sched.fusion.launches_saved >= 2
    assert sched.pool.peak_bytes < naive.pool.peak_bytes
    # fusion eliminated at least the three point-op intermediates' worth
    assert sched.fusion.intermediate_bytes_eliminated > 0


def test_naive_pipeline_reports_full_footprint():
    naive, _, _, _ = measure(size=256)
    assert naive.launches == 7
    assert naive.pool.peak_bytes == naive.pool.naive_bytes
    assert naive.fusion.pairs_fused == 0


def main():
    try:
        from .common import run_traced, write_bench_json
    except ImportError:        # run directly: benchmarks/ is sys.path[0]
        from common import run_traced, write_bench_json

    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small frame (CI smoke)")
    parser.add_argument("--workers", type=int, default=4,
                        help="thread count for the scheduled run")
    parser.add_argument("--json", action="store_true",
                        help="write BENCH_pipeline_graph.json with "
                             "per-stage span breakdowns")
    args = parser.parse_args()
    if not args.json:
        report(quick=args.quick, workers=args.workers)
        return
    (naive, sched), stages = run_traced(
        report, quick=args.quick, workers=args.workers)
    path = write_bench_json(
        "pipeline_graph",
        {"naive_launches": naive.launches,
         "scheduled_launches": sched.launches,
         "launches_saved": sched.fusion.launches_saved,
         "naive_peak_bytes": naive.pool.peak_bytes,
         "scheduled_peak_bytes": sched.pool.peak_bytes,
         "naive_device_ms": naive.total_device_ms,
         "scheduled_device_ms": sched.total_device_ms},
        stages)
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
