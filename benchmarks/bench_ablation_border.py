"""Ablation: boundary-handling strategy (the paper's central design
choice).

Sweeps the four code-generation strategies — no handling, per-access
inline conditionals (manual style), hardware address modes, and the
paper's nine-region specialisation — across boundary modes on the Tesla
C2050, quantifying what each mechanism buys.
"""

from repro import Boundary
from repro.backends.base import BorderMode
from repro.evaluation.variants import (
    VariantSpec,
    evaluate_bilateral_cell,
)
from repro.reporting.tables import format_table, shape_check

MODES = [Boundary.CLAMP, Boundary.REPEAT, Boundary.MIRROR,
         Boundary.CONSTANT]

STRATEGIES = {
    "inline conditionals": VariantSpec("inline", "manual", use_mask=True),
    "9-region specialized": VariantSpec("spec", "generated",
                                        use_mask=True),
    "hardware (2D tex)": VariantSpec("hw", "manual", use_mask=True,
                                     use_texture=True,
                                     hardware_border=True),
}


def run_ablation():
    table = {}
    for label, variant in STRATEGIES.items():
        table[label] = {
            m.value: evaluate_bilateral_cell("Tesla C2050", "cuda",
                                             variant, m)
            for m in MODES
        }
    # no-handling baseline (undefined semantics) via the texture path,
    # which doesn't fault
    base_variant = VariantSpec("base", "manual", use_mask=True,
                               use_texture=True)
    table["no handling (baseline)"] = {
        m.value: evaluate_bilateral_cell("Tesla C2050", "cuda",
                                         base_variant,
                                         Boundary.UNDEFINED)
        for m in MODES
    }
    return table


def test_border_strategy_ablation(benchmark):
    table = benchmark(run_ablation)
    print()
    print(format_table(table, [m.value for m in MODES],
                       title="Ablation — boundary-handling strategy "
                             "(bilateral 13x13, Tesla C2050, ms)"))

    base = table["no handling (baseline)"]["clamp"]
    spec = table["9-region specialized"]
    inline = table["inline conditionals"]

    failures = []

    def check(name, cond, detail=""):
        print(shape_check(name, cond, detail))
        if not cond:
            failures.append(name)

    overhead_spec = max(spec[m.value] for m in MODES) / base
    overhead_inline = max(v for v in
                          (inline[m.value] for m in MODES)
                          if isinstance(v, float)) / base
    check("specialisation overhead < 10% over no handling",
          overhead_spec < 1.10, f"{overhead_spec:.3f}x")
    check("inline worst-case overhead > 2x over no handling",
          overhead_inline > 2.0, f"{overhead_inline:.2f}x")
    hw = table["hardware (2D tex)"]
    check("hardware handling free where supported",
          isinstance(hw["clamp"], float)
          and hw["clamp"] <= base * 1.02)
    check("hardware handling unavailable for mirror/constant",
          hw["mirror"] == "n/a" and hw["constant"] == "n/a")
    assert not failures, failures
