"""Compilation-cache and parallel-exploration speedups.

Two headline numbers back the cache subsystem (docs/CACHING.md):

* **cold vs warm compile** — a cache hit replays the stored artifact
  (plus the memoised frontend) instead of the parse -> typecheck ->
  codegen -> Algorithm-2 pipeline; target >= 10x.
* **serial vs parallel exploration** — ``explore_many`` fans whole
  per-device Figure-4 walks out over a process pool; target >= 2x on a
  4-core runner (reported honestly: a 1-core box shows ~1x).

Run directly::

    PYTHONPATH=src python benchmarks/bench_cache_exploration.py [--quick]

Under pytest the same measurements assert the acceptance bounds (the
parallel bound only where >= 4 cores exist).
"""

from __future__ import annotations

import argparse
import os
import time

from repro import CompilationCache, compile_kernel
from repro.evaluation.figure4 import figure4_device_sweep
from repro.filters.gaussian import make_gaussian

DEVICE = "Tesla C2050"


def _fresh_kernel():
    # a new object every call: a warm hit must come from the content
    # address, not from object identity
    return make_gaussian(256, 256, size=5)[0]


def measure_cache(repeats: int = 20):
    """Return (cold_ms, warm_ms): best-of-N full pipeline vs cache hit."""
    cold = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        compile_kernel(_fresh_kernel(), backend="cuda", device=DEVICE,
                       cache=CompilationCache())
        cold.append((time.perf_counter() - t0) * 1e3)

    cache = CompilationCache()
    compile_kernel(_fresh_kernel(), backend="cuda", device=DEVICE,
                   cache=cache)                      # prime
    warm = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        compiled = compile_kernel(_fresh_kernel(), backend="cuda",
                                  device=DEVICE, cache=cache)
        warm.append((time.perf_counter() - t0) * 1e3)
        assert compiled.from_cache
    return min(cold), min(warm)


def measure_exploration(size: int = 4096, workers: int = 4,
                        repeats: int = 2):
    """Return (serial_s, parallel_s) for the 4-device Figure-4 sweep."""
    serial = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        serial_result = figure4_device_sweep(width=size, height=size)
        serial.append(time.perf_counter() - t0)
    parallel = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        parallel_result = figure4_device_sweep(width=size, height=size,
                                               workers=workers,
                                               use_processes=True)
        parallel.append(time.perf_counter() - t0)
    assert parallel_result == serial_result, \
        "parallel sweep diverged from serial"
    return min(serial), min(parallel)


def report(quick: bool = False, workers: int = 0):
    cores = os.cpu_count() or 1
    workers = workers or min(4, cores)
    repeats = 5 if quick else 20
    cold_ms, warm_ms = measure_cache(repeats)
    cache_speedup = cold_ms / warm_ms
    print(f"cache:        cold {cold_ms:7.2f} ms   warm {warm_ms:7.2f} ms"
          f"   speedup {cache_speedup:5.1f}x   (target >= 10x)")

    size = 512 if quick else 4096
    serial_s, parallel_s = measure_exploration(
        size=size, workers=workers, repeats=1 if quick else 2)
    explore_speedup = serial_s / parallel_s
    print(f"exploration:  serial {serial_s:6.2f} s   parallel "
          f"{parallel_s:6.2f} s   speedup {explore_speedup:5.1f}x   "
          f"({workers} workers on {cores} cores; target >= 2x on a "
          f"4-core runner)")
    return cache_speedup, explore_speedup, cores


def test_warm_cache_speedup():
    cold_ms, warm_ms = measure_cache()
    assert cold_ms / warm_ms >= 10.0, \
        f"warm cache only {cold_ms / warm_ms:.1f}x faster " \
        f"({cold_ms:.2f} ms -> {warm_ms:.2f} ms)"


def test_parallel_exploration_speedup():
    import pytest
    cores = os.cpu_count() or 1
    if cores < 4:
        pytest.skip(f"needs a 4-core runner, found {cores}")
    serial_s, parallel_s = measure_exploration()
    assert serial_s / parallel_s >= 2.0, \
        f"parallel exploration only {serial_s / parallel_s:.1f}x faster"


def main():
    try:
        from .common import run_traced, write_bench_json
    except ImportError:        # run directly: benchmarks/ is sys.path[0]
        from common import run_traced, write_bench_json

    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small geometry + few repeats (CI smoke)")
    parser.add_argument("--workers", type=int, default=0,
                        help="pool size for the parallel sweep "
                             "(default: min(4, cores))")
    parser.add_argument("--json", action="store_true",
                        help="write BENCH_cache_exploration.json with "
                             "per-stage span breakdowns")
    args = parser.parse_args()
    if not args.json:
        report(quick=args.quick, workers=args.workers)
        return
    (cache_speedup, explore_speedup, cores), stages = run_traced(
        report, quick=args.quick, workers=args.workers)
    path = write_bench_json(
        "cache_exploration",
        {"cache_speedup": cache_speedup,
         "exploration_speedup": explore_speedup,
         "cores": cores},
        stages)
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
