"""Table VII — bilateral 13x13, Radeon HD 6970, OpenCL.

Regenerates the published table through the full pipeline and checks its
shape claims; pytest-benchmark times the pipeline run.
"""

from .common import report_bilateral, run_bilateral_table

DEVICE = "Radeon HD 6970"
BACKEND = "opencl"
TITLE = "Table VII — bilateral 13x13, Radeon HD 6970, OpenCL"


def test_table7(benchmark):
    table = benchmark(run_bilateral_table, DEVICE, BACKEND)
    report_bilateral(table, DEVICE, BACKEND, TITLE)
