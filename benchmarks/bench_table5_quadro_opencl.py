"""Table V — bilateral 13x13, Quadro FX 5800, OpenCL.

Regenerates the published table through the full pipeline and checks its
shape claims; pytest-benchmark times the pipeline run.
"""

from .common import report_bilateral, run_bilateral_table

DEVICE = "Quadro FX 5800"
BACKEND = "opencl"
TITLE = "Table V — bilateral 13x13, Quadro FX 5800, OpenCL"


def test_table5(benchmark):
    table = benchmark(run_bilateral_table, DEVICE, BACKEND)
    report_bilateral(table, DEVICE, BACKEND, TITLE)
