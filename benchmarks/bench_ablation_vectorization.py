"""Ablation: AMD vectorization (paper Section VIII).

"First manual vectorization shows that the performance improves
significantly on graphics cards from AMD."  Sweeps vector widths on the
VLIW devices (and the scalar Tesla as control) for the bilateral filter.
"""

from repro.backends.base import BorderMode, MaskMemory
from repro.dsl.boundary import Boundary
from repro.hwmodel import get_device
from repro.hwmodel.resources import estimate_resources
from repro.evaluation.variants import _bilateral_ir
from repro.reporting.tables import format_table, shape_check
from repro.sim.timing import LaunchSpec, estimate_time

DEVICES = ["Radeon HD 5870", "Radeon HD 6970", "Tesla C2050"]
WIDTHS = [1, 2, 4, 8]


def run_vector_sweep():
    ir = _bilateral_ir(True, "clamp", 3, 5.0)
    table = {}
    for name in DEVICES:
        dev = get_device(name)
        resources = estimate_resources(ir, dev)
        row = {}
        for width in WIDTHS:
            spec = LaunchSpec(
                device=dev, backend="opencl", width=4096, height=4096,
                block=(64, 2), window=(13, 13),
                mix=resources.instruction_mix,
                boundary_mode=Boundary.CLAMP,
                border=BorderMode.SPECIALIZED,
                mask_memory=MaskMemory.CONSTANT,
                vector_width=width,
                regs_per_thread=resources.registers_per_thread,
            )
            row[f"float{width}" if width > 1 else "scalar"] = \
                estimate_time(spec).total_ms
        table[name] = row
    return table


def test_vectorization_ablation(benchmark):
    table = benchmark(run_vector_sweep)
    print()
    print(format_table(
        table, ["scalar", "float2", "float4", "float8"],
        title="Ablation — vectorization (bilateral 13x13, OpenCL, ms)"))

    failures = []

    def check(name, cond, detail=""):
        print(shape_check(name, cond, detail))
        if not cond:
            failures.append(name)

    for name in ("Radeon HD 5870", "Radeon HD 6970"):
        speedup = table[name]["scalar"] / table[name]["float4"]
        check(f"{name}: float4 significantly faster", speedup > 1.6,
              f"{speedup:.2f}x")
    tesla = table["Tesla C2050"]
    check("Tesla (scalar SIMT): vectorization ~neutral",
          0.9 < tesla["scalar"] / tesla["float4"] < 1.15,
          f"{tesla['scalar'] / tesla['float4']:.2f}x")
    hd = table["Radeon HD 5870"]
    check("VLIW5 saturates around width 4-8",
          hd["float8"] <= hd["float4"] * 1.02)
    assert not failures, failures
