"""Auto-tuner benchmark: heuristic vs tuned vs exhaustive.

For a set of builtin filters this benchmark runs the measurement-driven
tuner (:mod:`repro.mapping.tuner`) with the deterministic ``model``
signal, then walks the *entire* legal configuration space (the Figure-4
sweep) over the same launch parameters, and reports the three-way gap:

* **heuristic** — Algorithm 2's static choice, scored on the signal;
* **tuned** — the budgeted adaptive search's winner (a handful of
  trials: heuristic seed + top-modelled candidates + hill-climb);
* **exhaustive** — the optimum over the full Figure-4 candidate grid.

Invariants asserted under pytest (and on every ``--json`` run):

* tuned is never worse than the heuristic on the measured signal (the
  heuristic's block is always a seed);
* tuned lands within a few percent of the exhaustive grid optimum on a
  small budget — and may legitimately *beat* it (negative tuned gap),
  because the hill-climb's factor-of-two moves can step off the
  candidate grid onto tilings the Figure-4 walk never enumerates;
* a compile consulting the freshly tuned database adopts the winner
  with **zero** new exploration trials (``tuner.*`` metric-asserted).

The ``model`` signal makes the headline quality numbers bit-for-bit
deterministic — only ``tune_wall_ms`` varies run to run, and the CI
perf sentinel's generous gates absorb that.

Run directly::

    PYTHONPATH=src python benchmarks/bench_autotune.py [--quick] [--json]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.cache.key import pristine_ir_digest
from repro.cli import _build_filter
from repro.mapping.optdb import TunedDatabase
from repro.mapping.tuner import TUNER_STATS, exhaustive_best, tune_kernel
from repro.runtime.compile import compile_kernel

DEVICE = "Tesla C2050"
FILTERS = ("bilateral", "gaussian", "sobel")
EPS = 1e-9


def _frame(size):
    rng = np.random.default_rng(11)
    return (rng.random((size, size)) * 255).astype(np.float32)


def tune_one(name, size, budget, db):
    """Tune one builtin filter; returns its three-way gap numbers."""
    kernel, _, _ = _build_filter(name, size, "clamp", _frame(size))
    result = tune_kernel(kernel, device=DEVICE, signal="model",
                         budget=budget, db=db)
    ex_block, ex_ms = exhaustive_best(result)
    assert result.best_ms <= result.heuristic_ms + EPS, \
        f"{name}: tuned worse than the heuristic on the measured signal"
    # the hill-climb may leave the candidate grid and beat ex_ms, but a
    # budgeted search drifting far *above* the grid optimum is a quality
    # regression in the search itself
    assert result.best_ms <= ex_ms * 1.05, \
        f"{name}: tuned more than 5% off the exhaustive grid optimum"
    return {
        "filter": name,
        "result": result,
        "exhaustive_block": ex_block,
        "exhaustive_ms": ex_ms,
    }


def consult_with_zero_trials(name, size, db):
    """Compile *name* against the tuned database and prove the winner
    was adopted without a single new exploration trial."""
    kernel, _, _ = _build_filter(name, size, "clamp", _frame(size))
    before = TUNER_STATS.snapshot()
    compiled = compile_kernel(kernel, device=DEVICE, tuned=db)
    after = TUNER_STATS.snapshot()
    new_trials = after["trials"] - before["trials"]
    new_hits = after["hits"] - before["hits"]
    assert new_trials == 0, \
        f"{name}: consulting the database cost {new_trials} trials"
    assert new_hits == 1, f"{name}: tuned lookup did not hit"
    entry = db.lookup(pristine_ir_digest(compiled.ir), DEVICE, "cuda")
    assert entry is not None \
        and tuple(compiled.options.block) == tuple(entry.block), \
        f"{name}: compile did not adopt the tuned winner"
    return new_trials


def measure(size=512, budget=16):
    db = TunedDatabase()
    rows = [tune_one(name, size, budget, db) for name in FILTERS]
    consult_trials = sum(consult_with_zero_trials(name, size, db)
                         for name in FILTERS)

    heuristic_ms = sum(r["result"].heuristic_ms for r in rows)
    tuned_ms = sum(r["result"].best_ms for r in rows)
    exhaustive_ms = sum(r["exhaustive_ms"] for r in rows)
    trials = sum(r["result"].trials for r in rows)
    candidates = sum(r["result"].candidates for r in rows)
    wall_ms = sum(r["result"].wall_ms for r in rows)
    return {
        "size": size,
        "budget": budget,
        "filters": len(rows),
        "heuristic_ms": heuristic_ms,
        "tuned_ms": tuned_ms,
        "exhaustive_ms": exhaustive_ms,
        "heuristic_gap_pct":
            (heuristic_ms / exhaustive_ms - 1.0) * 100.0,
        "tuned_gap_pct": (tuned_ms / exhaustive_ms - 1.0) * 100.0,
        "speedup_over_heuristic": heuristic_ms / tuned_ms,
        "trials": trials,
        "candidates": candidates,
        "prune_rate": 1.0 - trials / candidates,
        "consult_trials": consult_trials,
        "tune_wall_ms": wall_ms,
    }, rows


def report(quick: bool = False):
    size = 128 if quick else 512
    m, rows = measure(size=size)
    print(f"auto-tune gap on {DEVICE}, {size}x{size}, "
          f"budget {m['budget']}:")
    print(f"{'filter':<11}{'heuristic':>11}{'tuned':>9}{'optimum':>9}"
          f"{'heur gap':>10}{'tuned gap':>10}")
    for r in rows:
        res = r["result"]
        print(f"{r['filter']:<11}"
              f"{res.heuristic_block[0]:>6}x{res.heuristic_block[1]:<4}"
              f"{res.best_block[0]:>4}x{res.best_block[1]:<4}"
              f"{r['exhaustive_block'][0]:>4}x"
              f"{r['exhaustive_block'][1]:<4}"
              f"{(res.heuristic_ms / r['exhaustive_ms'] - 1) * 100:>+9.1f}%"
              f"{(res.best_ms / r['exhaustive_ms'] - 1) * 100:>+9.1f}%")
    print(f"  signal totals:   heuristic {m['heuristic_ms']:.3f} ms, "
          f"tuned {m['tuned_ms']:.3f} ms, "
          f"optimum {m['exhaustive_ms']:.3f} ms")
    print(f"  search cost:     {m['trials']}/{m['candidates']} "
          f"configurations measured "
          f"({m['prune_rate']:.0%} pruned by the occupancy model)")
    print(f"  warm consults:   {m['consult_trials']} exploration trials "
          "across one compile per filter (winners served from the "
          "database)")
    return m


# ---- pytest acceptance assertions ----------------------------------------

def test_tuned_never_worse_than_heuristic():
    db = TunedDatabase()
    for name in FILTERS:
        row = tune_one(name, 96, 12, db)      # asserts internally
        assert row["result"].best_ms <= row["result"].heuristic_ms + EPS


def test_second_compile_consults_with_zero_trials():
    db = TunedDatabase()
    tune_one("gaussian", 96, 12, db)
    assert consult_with_zero_trials("gaussian", 96, db) == 0


def test_prune_rate_substantial():
    m, _ = measure(size=96, budget=12)
    assert m["prune_rate"] > 0.5, \
        "the adaptive search should measure a small fraction of the space"


def main():
    try:
        from .common import run_traced, write_bench_json
    except ImportError:        # run directly: benchmarks/ is sys.path[0]
        from common import run_traced, write_bench_json

    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small frame (CI smoke)")
    parser.add_argument("--json", action="store_true",
                        help="write BENCH_autotune.json with per-stage "
                             "span breakdowns")
    args = parser.parse_args()
    if not args.json:
        report(quick=args.quick)
        return
    m, stages = run_traced(report, quick=args.quick)
    path = write_bench_json("autotune", m, stages)
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
