"""Ablation: Algorithm 2 vs exhaustive exploration vs naive defaults.

For every device: explore all legal configurations for the bilateral
filter, then compare (a) the heuristic's pick, (b) the common naive
choices (128x1, maximum block), against the exhaustive optimum.  The
heuristic must stay within 10% of optimal everywhere — the paper's
claim — while naive choices can be far off.
"""

from repro.dsl.boundary import Boundary
from repro.evaluation.figure4 import figure4_exploration
from repro.hwmodel import EVALUATION_DEVICES, get_device
from repro.reporting.tables import format_table, shape_check


def run_heuristic_ablation():
    results = {}
    for name in EVALUATION_DEVICES:
        dev = get_device(name)
        backend = "cuda" if dev.vendor == "NVIDIA" else "opencl"
        r = figure4_exploration(device=dev, backend=backend)
        by_block = {p.block: p.time_ms for p in r.points}
        naive_128 = by_block.get((128, 1))
        max_block = max(by_block, key=lambda b: b[0] * b[1])
        results[name] = {
            "optimum": r.best.time_ms,
            "heuristic": r.heuristic_ms,
            "128x1": naive_128 if naive_128 is not None else float("nan"),
            "max block": by_block[max_block],
            "worst": max(p.time_ms for p in r.points),
        }
    return results


def test_heuristic_vs_exploration(benchmark):
    table = benchmark(run_heuristic_ablation)
    print()
    print(format_table(
        table, ["optimum", "heuristic", "128x1", "max block", "worst"],
        title="Ablation — Algorithm 2 vs exhaustive exploration "
              "(bilateral 13x13, ms)"))

    failures = []

    def check(name, cond, detail=""):
        print(shape_check(name, cond, detail))
        if not cond:
            failures.append(name)

    for name, row in table.items():
        ratio = row["heuristic"] / row["optimum"]
        check(f"{name}: heuristic within 10% of optimum", ratio <= 1.10,
              f"{ratio:.3f}x")
        spread = row["worst"] / row["optimum"]
        if name == "Tesla C2050":
            # Fermi can reach very low occupancy (1 warp x 8 blocks of a
            # 48-warp budget) — the Figure 4 spread
            check(f"{name}: configuration spread is real", spread > 1.5,
                  f"{spread:.2f}x")
        else:
            # GT200 warp-pair allocation and AMD's 256-thread cap floor
            # occupancy at ~0.5, so the modelled spread is small there
            print(f"       {name}: spread {spread:.2f}x (informational)")
    assert not failures, failures
