"""Table VI — bilateral 13x13, Radeon HD 5870, OpenCL.

Regenerates the published table through the full pipeline and checks its
shape claims; pytest-benchmark times the pipeline run.
"""

from .common import report_bilateral, run_bilateral_table

DEVICE = "Radeon HD 5870"
BACKEND = "opencl"
TITLE = "Table VI — bilateral 13x13, Radeon HD 5870, OpenCL"


def test_table6(benchmark):
    table = benchmark(run_bilateral_table, DEVICE, BACKEND)
    report_bilateral(table, DEVICE, BACKEND, TITLE)
