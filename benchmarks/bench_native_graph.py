"""Native graph tier: cold vs warm compile, native vs simulator wall.

The fully native edge chain (median -> sobel-x -> sobel-y -> magnitude)
runs three ways over the same frame:

* **sim** — the Python simulator, the correctness oracle;
* **native cold** — first `compile_native_graph` in an empty workdir and
  artifact store: plans, emits one C translation unit and invokes the C
  compiler;
* **native warm** — the same graph again: the ``.so`` resolves from the
  materialised workdir (and, after deleting it, from the artifact
  store), so no compiler runs at all.

Headline numbers (asserted under pytest, printed when run directly):

* warm-start artifact resolution is orders of magnitude cheaper than
  the cold C compile;
* native execution output is byte-identical to the simulator.

Run directly::

    PYTHONPATH=src python benchmarks/bench_native_graph.py [--quick] [--json]
"""

from __future__ import annotations

import argparse
import os
import shutil
import tempfile
import time

import numpy as np

from repro import (
    Accessor,
    Boundary,
    BoundaryCondition,
    CompilationCache,
    Image,
    IterationSpace,
    Mask,
    PipelineGraph,
)
from repro.data import impulse_noise_image
from repro.filters.median import Median3x3
from repro.filters.sobel import (SOBEL_X, SOBEL_Y, GradientMagnitude,
                                 SobelX, SobelY)
from repro.graph import compile_graph, execute_graph
from repro.runtime.native import find_c_compiler
from repro.runtime.native_graph import compile_native_graph

DEVICE = "Tesla C2050"


def build_graph(frame, size):
    """The bit-exact edge chain: every node is native-eligible."""
    src = Image(size, size, float, name="src").set_data(frame)
    den = Image(size, size, float, name="denoised")
    gx = Image(size, size, float, name="grad_x")
    gy = Image(size, size, float, name="grad_y")
    out = Image(size, size, float, name="edges")

    g = PipelineGraph("edge-native")
    g.add_kernel(Median3x3(IterationSpace(den), Accessor(
        BoundaryCondition(src, 3, 3, Boundary.MIRROR))), name="median",
        device=DEVICE)
    bc = BoundaryCondition(den, 3, 3, Boundary.CLAMP)
    g.add_kernel(SobelX(IterationSpace(gx), Accessor(bc),
                        Mask(3, 3).set(SOBEL_X)), name="sobel_x",
                 device=DEVICE)
    g.add_kernel(SobelY(IterationSpace(gy), Accessor(bc),
                        Mask(3, 3).set(SOBEL_Y)), name="sobel_y",
                 device=DEVICE)
    g.add_kernel(GradientMagnitude(IterationSpace(out), Accessor(gx),
                                   Accessor(gy)), name="magnitude",
                 device=DEVICE)
    g.mark_output(out)
    return g, out


def measure(size=512):
    if find_c_compiler() is None:
        raise RuntimeError("no C compiler on PATH — the native tier "
                           "cannot run on this machine")
    frame = impulse_noise_image(size, size, seed=7, density=0.02)

    g, out = build_graph(frame, size)
    sim = execute_graph(g, cache=CompilationCache(), workers=1)
    sim_out = out.get_data().copy()

    workdir = tempfile.mkdtemp(prefix="bench_native_graph_")
    saved_env = os.environ.get("REPRO_NATIVE_DIR")
    os.environ["REPRO_NATIVE_DIR"] = workdir
    try:
        cache = CompilationCache(directory=os.path.join(workdir, "store"))
        g2, out2 = build_graph(frame, size)
        compile_graph(g2, cache=cache, workers=1)

        t0 = time.perf_counter()
        cold = compile_native_graph(g2, cache=cache)
        cold_ms = (time.perf_counter() - t0) * 1e3
        assert cold.origin == "fresh", cold.origin

        t0 = time.perf_counter()
        warm = compile_native_graph(g2, cache=cache)
        warm_ms = (time.perf_counter() - t0) * 1e3
        assert warm.origin == "workdir", warm.origin

        os.unlink(cold.library_path)     # force the store tier
        t0 = time.perf_counter()
        store = compile_native_graph(g2, cache=cache)
        store_ms = (time.perf_counter() - t0) * 1e3
        assert store.origin == "store", store.origin

        native = execute_graph(g2, cache=cache, workers=1,
                               engine="native")
        assert native.engine_used == "native"
        nat_out = out2.get_data().copy()
        assert np.array_equal(sim_out, nat_out), \
            "native execution diverged from the simulator"
    finally:
        if saved_env is None:
            os.environ.pop("REPRO_NATIVE_DIR", None)
        else:
            os.environ["REPRO_NATIVE_DIR"] = saved_env
        shutil.rmtree(workdir, ignore_errors=True)

    return {
        "size": size,
        "cold_compile_ms": cold_ms,
        "warm_workdir_ms": warm_ms,
        "warm_store_ms": store_ms,
        "sim_execute_ms": sim.execute_wall_ms,
        "native_execute_ms": native.execute_wall_ms,
        "native_nodes": native.native_nodes,
        "launches": native.launches,
        "segments": len(cold.plan.segments),
        "slab_bytes": cold.plan.slab_bytes,
    }


def report(quick: bool = False):
    size = 256 if quick else 512
    m = measure(size)
    print(f"native graph tier, {size}x{size} frame:")
    print(f"  nodes:               {m['native_nodes']}/{m['launches']} "
          f"native in {m['segments']} segment(s), "
          f"{m['slab_bytes'] / 1024:.1f} KiB slab")
    print(f"  cold compile:        {m['cold_compile_ms']:8.1f} ms "
          "(plan + emit + cc)")
    print(f"  warm (workdir .so):  {m['warm_workdir_ms']:8.1f} ms "
          f"({m['cold_compile_ms'] / max(m['warm_workdir_ms'], 1e-3):.0f}x"
          " faster, zero compiler invocations)")
    print(f"  warm (artifact store): {m['warm_store_ms']:6.1f} ms")
    print(f"  execute wall:        sim {m['sim_execute_ms']:.1f} ms -> "
          f"native {m['native_execute_ms']:.1f} ms")
    print("  output: byte-identical to the simulator")
    return m


def test_warm_start_much_cheaper_than_cold():
    m = measure(size=96)
    assert m["warm_workdir_ms"] < m["cold_compile_ms"] / 2
    assert m["warm_store_ms"] < m["cold_compile_ms"]


def test_whole_chain_is_native():
    m = measure(size=96)
    assert m["native_nodes"] == m["launches"]
    assert m["segments"] == 1


def main():
    try:
        from .common import run_traced, write_bench_json
    except ImportError:        # run directly: benchmarks/ is sys.path[0]
        from common import run_traced, write_bench_json

    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small frame (CI smoke)")
    parser.add_argument("--json", action="store_true",
                        help="write BENCH_native_graph.json with "
                             "per-stage span breakdowns")
    args = parser.parse_args()
    if not args.json:
        report(quick=args.quick)
        return
    m, stages = run_traced(report, quick=args.quick)
    path = write_bench_json("native_graph", m, stages)
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
