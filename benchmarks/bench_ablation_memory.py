"""Ablation: memory-path selection (texture / scratchpad / constant
memory) per device — the decisions the optimization database automates.

Sweeps the memory knobs for a representative local operator on every
evaluation device and verifies the database's choices are the measured
winners.
"""

from repro.backends.base import BorderMode, MaskMemory
from repro.dsl.boundary import Boundary
from repro.evaluation.opencv_cmp import generated_gaussian_time
from repro.evaluation.variants import VariantSpec, evaluate_bilateral_cell
from repro.hwmodel import EVALUATION_DEVICES, get_device
from repro.mapping.optdb import default_database
from repro.reporting.tables import format_table, shape_check


def run_memory_ablation():
    table = {}
    for name in EVALUATION_DEVICES:
        dev = get_device(name)
        backend = "cuda" if dev.vendor == "NVIDIA" else "opencl"
        row = {}
        for label, tex, smem in (("plain", False, False),
                                 ("texture", True, False),
                                 ("scratchpad", False, True)):
            row[label] = generated_gaussian_time(
                dev, 5, Boundary.CLAMP, backend,
                use_texture=tex, use_smem=smem)
        # constant vs recomputed mask on the bilateral
        row["mask const"] = evaluate_bilateral_cell(
            dev, backend,
            VariantSpec("m", "generated", use_mask=True), Boundary.CLAMP)
        row["mask recompute"] = evaluate_bilateral_cell(
            dev, backend,
            VariantSpec("m", "generated", use_mask=False), Boundary.CLAMP)
        table[name] = row
    return table


def test_memory_path_ablation(benchmark):
    table = benchmark(run_memory_ablation)
    print()
    print(format_table(
        table, ["plain", "texture", "scratchpad", "mask const",
                "mask recompute"],
        title="Ablation — memory paths (Gaussian 5x5 / bilateral 13x13, "
              "ms)"))

    db = default_database()
    failures = []

    def check(name, cond, detail=""):
        print(shape_check(name, cond, detail))
        if not cond:
            failures.append(name)

    for name in EVALUATION_DEVICES:
        dev = get_device(name)
        backend = "cuda" if dev.vendor == "NVIDIA" else "opencl"
        row = table[name]
        entry = db.lookup(dev, backend)
        measured_tex_wins = row["texture"] < row["plain"]
        check(f"{name}: optdb texture decision matches measurement",
              entry.texture_beneficial == measured_tex_wins,
              f"db={entry.texture_beneficial} measured gain "
              f"{row['plain'] / row['texture']:.2f}x")
        check(f"{name}: scratchpad loses for small windows",
              row["scratchpad"] > min(row["plain"], row["texture"]))
        check(f"{name}: constant-memory mask wins",
              row["mask const"] < row["mask recompute"])
    assert not failures, failures
