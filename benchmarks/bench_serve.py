"""Benchmark the ``repro serve`` service: cold vs warm latency, dedup.

The service's reason to exist is amortisation: the first request pays
frontend parsing, code generation and buffer-arena growth; every
subsequent request of the same pipeline shape rides the shared
:class:`~repro.cache.CompilationCache` and a warm per-worker
:class:`~repro.graph.pool.BufferPool`.  This benchmark measures exactly
that contract over the real HTTP path:

* **cold** — the first request against a fresh server (includes every
  compile);
* **warm** — N requests with *distinct* image payloads (distinct
  fingerprints, so each one executes — no dedup shortcut), reported as
  p50/p99 and requests/second.  The ``/metrics`` deltas across the warm
  phase must show **zero cache misses** (no compiler invocations) and
  **zero arena allocations** — violations fail the run;
* **dedup** — a concurrent burst of identical requests; the dedup rate
  is ``serve.dedup_hits / burst`` (all but one answered without an
  execution of their own).

By default an in-process server on an ephemeral port is booted (fresh
cache, deterministic cold phase); ``--host``/``--port`` target an
already-running server instead (the CI serve job boots one with the
CLI and points this benchmark at it — there the cold number is only
meaningful if the server is freshly started).

``--json`` writes ``BENCH_serve.json`` via the shared
``repro-bench-v1`` schema helper.
"""

from __future__ import annotations

import argparse
import statistics
import threading
import time

import numpy as np


def _boot_inprocess(workers: int, engine: str):
    import os
    import tempfile

    from repro.cache import CompilationCache
    from repro.serve.server import create_server
    from repro.serve.service import ServeConfig

    # a fresh native workdir so the cold request really is cold — the
    # default tempdir location survives across benchmark invocations
    # and would hand the "first" compile a materialised .so
    os.environ["REPRO_NATIVE_DIR"] = tempfile.mkdtemp(
        prefix="bench_serve_native_")

    # a short window still coalesces the deliberately-concurrent dedup
    # burst but keeps the sequential warm phase honest about latency
    config = ServeConfig(workers=workers, batch_window_ms=1.0,
                         engine=engine)
    server = create_server(port=0, config=config,
                           cache=CompilationCache())
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]

    def shutdown():
        server.service.drain(timeout=10.0)
        server.shutdown()
        server.server_close()

    return host, port, shutdown


def _frames(count: int, size: int, seed: int = 11):
    """Distinct frames -> distinct fingerprints -> every request
    executes (the warm numbers measure execution, not dedup)."""
    rng = np.random.default_rng(seed)
    return [rng.random((size, size), dtype=np.float32)
            for _ in range(count)]


def _metric(snapshot, source: str, key: str) -> float:
    return float(snapshot.get(source, {}).get(key, 0))


def run(host=None, port=None, size=64, warm_requests=40, burst=8,
        workers=2, engine="sim", pipeline="edge"):
    from repro.serve.client import ServeClient

    shutdown = None
    if host is None:
        host, port, shutdown = _boot_inprocess(workers, engine)
    client = ServeClient(host, port, timeout=120.0)
    client.wait_ready(timeout=15.0)
    try:
        return _run(client, size, warm_requests, burst, pipeline)
    finally:
        if shutdown is not None:
            shutdown()


def _run(client, size, warm_requests, burst, pipeline):
    frames = _frames(warm_requests + 1, size)

    # -- cold: the first request pays every compile ---------------------
    t0 = time.perf_counter()
    cold_result = client.execute(frames[0], pipeline=pipeline)
    cold_ms = (time.perf_counter() - t0) * 1e3

    # -- warm-up sweep so every worker's arena has grown ----------------
    warmup = _frames(4, size, seed=977)
    threads = [threading.Thread(
        target=client.execute, args=(frame,),
        kwargs={"pipeline": pipeline}) for frame in warmup]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    before = client.metrics()

    # -- warm: distinct payloads, sequential, per-request latency -------
    latencies = []
    for frame in frames[1:]:
        t0 = time.perf_counter()
        client.execute(frame, pipeline=pipeline)
        latencies.append((time.perf_counter() - t0) * 1e3)

    after = client.metrics()
    warm_misses = (_metric(after, "cache", "cache.ir.misses")
                   - _metric(before, "cache", "cache.ir.misses"))
    warm_allocs = (_metric(after, "pool", "pool.allocs")
                   - _metric(before, "pool", "pool.allocs"))

    # -- dedup: identical concurrent burst ------------------------------
    frame = _frames(1, size, seed=4242)[0]
    results = [None] * burst
    errors = []

    def fire(i):
        try:
            results[i] = client.execute(frame, pipeline=pipeline,
                                        timeout_ms=60000)
        except Exception as exc:    # noqa: BLE001 - report, don't hang
            errors.append(exc)

    threads = [threading.Thread(target=fire, args=(i,))
               for i in range(burst)]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    burst_wall_ms = (time.perf_counter() - t0) * 1e3
    if errors:
        raise RuntimeError(f"dedup burst failed: {errors[0]}")
    final = client.metrics()
    dedup_hits = (_metric(final, "serve", "serve.dedup_hits")
                  - _metric(after, "serve", "serve.dedup_hits"))

    # quantiles through the shared histogram estimator, so the committed
    # baseline numbers and the live serve.hist.request_ms metrics are
    # computed by the same code (repro.obs.hist)
    from repro.obs.hist import percentiles

    pct = percentiles(latencies)
    warm_p50, warm_p99 = pct["p50"], pct["p99"]
    warm_mean_s = statistics.fmean(latencies) / 1e3
    headline = {
        "cold_ms": round(cold_ms, 3),
        "warm_p50_ms": round(warm_p50, 3),
        "warm_p99_ms": round(warm_p99, 3),
        "warm_rps": round(1.0 / warm_mean_s, 1),
        "cold_over_warm_p50": round(cold_ms / warm_p50, 2),
        "warm_cache_misses": warm_misses,
        "warm_pool_allocs": warm_allocs,
        "dedup_burst": burst,
        "dedup_hits": dedup_hits,
        "dedup_rate": round(dedup_hits / burst, 3),
        "dedup_burst_wall_ms": round(burst_wall_ms, 3),
        "warm_requests": len(latencies),
        "image_size": size,
        "engine": results[0].meta.get("engine", "?"),
    }
    return headline


def report(headline) -> None:
    print(f"cold first request   {headline['cold_ms']:>9.2f} ms")
    print(f"warm p50             {headline['warm_p50_ms']:>9.2f} ms"
          f"   ({headline['cold_over_warm_p50']:.1f}x faster than cold)")
    print(f"warm p99             {headline['warm_p99_ms']:>9.2f} ms")
    print(f"warm throughput      {headline['warm_rps']:>9.1f} req/s")
    print(f"warm cache misses    {headline['warm_cache_misses']:>9.0f}")
    print(f"warm arena allocs    {headline['warm_pool_allocs']:>9.0f}")
    print(f"dedup                {headline['dedup_hits']:.0f}/"
          f"{headline['dedup_burst']} requests answered by one "
          f"execution (rate {headline['dedup_rate']:.2f})")

    # the serving contract, enforced where it is measured: the warm
    # path must never invoke the compiler or grow an arena, and a
    # concurrent identical burst must coalesce (the *exactly one
    # execution* version of this claim is pinned in tests/test_serve.py
    # with a deterministic batching window; over a real socket the
    # burst can straddle windows, so only require that dedup happened)
    assert headline["warm_cache_misses"] == 0, \
        f"warm path compiled: {headline['warm_cache_misses']} misses"
    assert headline["warm_pool_allocs"] == 0, \
        f"warm path allocated: {headline['warm_pool_allocs']} arenas"
    assert headline["dedup_hits"] > 0, \
        "identical concurrent burst produced no dedup at all"


def main():
    try:
        from .common import run_traced, write_bench_json
    except ImportError:        # run directly: benchmarks/ is sys.path[0]
        from common import run_traced, write_bench_json

    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small frames + few requests (CI)")
    parser.add_argument("--host", default=None,
                        help="target an already-running server instead "
                             "of booting one in-process")
    parser.add_argument("--port", type=int, default=8077)
    parser.add_argument("--size", type=int, default=None,
                        help="square frame edge (default 64, smoke 32)")
    parser.add_argument("--requests", type=int, default=None,
                        help="warm-phase request count "
                             "(default 40, smoke 10)")
    parser.add_argument("--workers", type=int, default=2,
                        help="in-process server worker threads")
    parser.add_argument("--engine", choices=["sim", "native", "auto"],
                        default="auto",
                        help="in-process server engine (auto is the "
                             "serve default: native when a C compiler "
                             "is on PATH)")
    parser.add_argument("--json", action="store_true",
                        help="write BENCH_serve.json")
    args = parser.parse_args()

    size = args.size or (16 if args.smoke else 32)
    requests = args.requests or (10 if args.smoke else 40)
    # run_traced collects the server-side spans too when the server is
    # in-process (serve.plan / serve.exec / compile.* land in stages);
    # against a remote server only the client-side wall times remain
    headline, stages = run_traced(run,
                                  host=args.host,
                                  port=args.port,
                                  size=size,
                                  warm_requests=requests,
                                  burst=6 if args.smoke else 8,
                                  workers=args.workers,
                                  engine=args.engine)
    report(headline)
    if args.json:
        path = write_bench_json("serve", headline, stages)
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
