"""Table II — bilateral 13x13, Tesla C2050, CUDA.

Regenerates the published table through the full pipeline and checks its
shape claims; pytest-benchmark times the pipeline run.
"""

from .common import report_bilateral, run_bilateral_table

DEVICE = "Tesla C2050"
BACKEND = "cuda"
TITLE = "Table II — bilateral 13x13, Tesla C2050, CUDA"


def test_table2(benchmark):
    table = benchmark(run_bilateral_table, DEVICE, BACKEND)
    report_bilateral(table, DEVICE, BACKEND, TITLE)
