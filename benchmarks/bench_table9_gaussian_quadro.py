"""Table IX — Gaussian 3x3 and 5x5 vs OpenCV on the Quadro FX 5800."""

import pytest

from .common import report_gaussian, run_gaussian_table

DEVICE = "Quadro FX 5800"


@pytest.mark.parametrize("size", [3, 5])
def test_table9(benchmark, size):
    table = benchmark(run_gaussian_table, DEVICE, size)
    report_gaussian(table, DEVICE, size,
                    f"Table IX — Gaussian {size}x{size}, {DEVICE}")
