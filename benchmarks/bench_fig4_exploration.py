"""Figure 4 — configuration-space exploration, bilateral 13x13 on the
Tesla C2050 (CUDA).

The exploration sweeps every legal block configuration and tiling
(Section V-D); the heuristic (Algorithm 2) must land within 10% of the
best point, the spread between best and worst must be wide (~2.5x in the
paper), and the selected configuration is the published 32x6.
"""

from repro.evaluation import paper_data
from repro.evaluation.figure4 import figure4_exploration
from repro.reporting.tables import shape_check


def run_exploration():
    return figure4_exploration()


def test_figure4(benchmark):
    result = benchmark(run_exploration)

    worst = max(p.time_ms for p in result.points)
    print()
    print(f"Figure 4 — explored {len(result.points)} configurations")
    print(f"  optimum: {result.best.block[0]}x{result.best.block[1]} at "
          f"{result.best.time_ms:.2f} ms "
          f"(paper: {paper_data.FIGURE4_OPTIMUM_BLOCK[0]}x"
          f"{paper_data.FIGURE4_OPTIMUM_BLOCK[1]} at "
          f"{paper_data.FIGURE4_OPTIMUM_MS} ms)")
    print(f"  worst: {worst:.2f} ms  "
          f"(paper outlier: ~{paper_data.FIGURE4_WORST_MS} ms)")
    print(f"  heuristic: {result.heuristic_block[0]}x"
          f"{result.heuristic_block[1]} at {result.heuristic_ms:.2f} ms "
          f"({result.heuristic_within:.3f}x of optimum)")

    # per-thread-count series, as Figure 4 plots
    series = {}
    for p in result.points:
        series.setdefault(p.threads, []).append(p.time_ms)
    print("  threads -> [best, worst] ms per tiling:")
    for threads in sorted(series)[:12]:
        times = series[threads]
        print(f"    {threads:>5}: [{min(times):7.2f}, {max(times):7.2f}] "
              f"({len(times)} tilings)")

    failures = []

    def check(name, cond, detail=""):
        print(shape_check(name, cond, detail))
        if not cond:
            failures.append(name)

    check("heuristic within 10% of optimum",
          result.heuristic_within <= paper_data.FIGURE4_HEURISTIC_WITHIN,
          f"{result.heuristic_within:.3f}x")
    check("heuristic selects the paper's 32x6",
          result.heuristic_block == paper_data.FIGURE4_OPTIMUM_BLOCK,
          str(result.heuristic_block))
    check("best-to-worst spread ~2x+", worst / result.best.time_ms > 1.8,
          f"{worst / result.best.time_ms:.2f}x")
    lo, hi = paper_data.FIGURE4_RANGE_MS
    check("optimum in the paper's range band",
          lo * 0.8 <= result.best.time_ms <= hi * 1.2,
          f"{result.best.time_ms:.1f} ms")
    check("multiple tilings explored per thread count",
          any(len(v) > 2 for v in series.values()))
    assert not failures, failures
