"""Table IV — bilateral 13x13, Quadro FX 5800, CUDA.

Regenerates the published table through the full pipeline and checks its
shape claims; pytest-benchmark times the pipeline run.
"""

from .common import report_bilateral, run_bilateral_table

DEVICE = "Quadro FX 5800"
BACKEND = "cuda"
TITLE = "Table IV — bilateral 13x13, Quadro FX 5800, CUDA"


def test_table4(benchmark):
    table = benchmark(run_bilateral_table, DEVICE, BACKEND)
    report_bilateral(table, DEVICE, BACKEND, TITLE)
