"""Shared machinery for the table-reproduction benchmarks.

Each ``bench_table*.py`` regenerates one published table through the full
pipeline (DSL parse -> IR -> resource estimation -> timing model), prints
the model-vs-paper comparison, and asserts the table's qualitative shape
claims.  ``pytest-benchmark`` times the regeneration itself (the real
compile+model pipeline executing on this machine).
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.evaluation import paper_data
from repro.evaluation.opencv_cmp import gaussian_table
from repro.evaluation.variants import bilateral_table
from repro.reporting.tables import (
    format_comparison_table,
    marker_agreement,
    relative_errors,
    shape_check,
)

HANDLED = ["clamp", "repeat", "mirror", "constant"]


def run_traced(fn: Callable, *args, **kwargs) -> Tuple[object, Dict]:
    """Run *fn* under the :mod:`repro.obs` tracer.

    Returns ``(result, stages)`` where *stages* maps each span name to
    its ``{count, total_ms, mean_ms}`` aggregate — the per-stage
    breakdown the ``BENCH_*.json`` artifacts carry.
    """
    from repro.obs import stage_totals, tracing

    with tracing() as tracer:
        result = fn(*args, **kwargs)
        stages = stage_totals(tracer)
    return result, stages


def write_bench_json(name: str, headline: Dict[str, float],
                     stages: Dict[str, Dict[str, float]],
                     out_dir: str = None) -> str:
    """Write ``BENCH_<name>.json`` and return its path.

    *headline* holds the benchmark's own numbers (speedups, wall times);
    *stages* is :func:`run_traced`'s per-span breakdown, so the artifact
    answers "where did the time go" without rerunning under a profiler.
    Every document is stamped with
    :data:`repro.obs.compare.BENCH_SCHEMA_VERSION` — the perf sentinel
    (``repro perf`` / ``scripts/bench_compare.py``) refuses documents
    whose version does not match, so a stale committed baseline can
    never silently pass against a fresh run.
    Directory precedence: *out_dir* arg, ``$BENCH_JSON_DIR``, then the
    current working directory.
    """
    from repro.obs.compare import BENCH_SCHEMA_VERSION

    out_dir = out_dir or os.environ.get("BENCH_JSON_DIR") or os.getcwd()
    path = os.path.join(out_dir, f"BENCH_{name}.json")
    doc = {
        "benchmark": name,
        "headline": headline,
        "stages": stages,
        "schema": "repro-bench-v1",
        "schema_version": BENCH_SCHEMA_VERSION,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def spread(row: Dict[str, object], modes=HANDLED) -> float:
    values = [row[m] for m in modes if isinstance(row[m], float)]
    return max(values) / min(values)


def run_bilateral_table(device: str, backend: str):
    return bilateral_table(device, backend)


def report_bilateral(model, device: str, backend: str,
                     title: str) -> List[str]:
    """Print comparison + shape checklist; return failed checks."""
    paper = paper_data.ALL_BILATERAL_TABLES[(device, backend)]
    print()
    print(format_comparison_table(model, paper, paper_data.MODE_ORDER,
                                  title=title))
    errs = relative_errors(model, paper, paper_data.MODE_ORDER)
    print(f"mean relative error vs paper: {np.mean(errs):.1%} "
          f"(max {np.max(errs):.1%}, n={len(errs)} cells)")

    checks = []

    def check(name, cond, detail=""):
        line = shape_check(name, cond, detail)
        print(line)
        if not cond:
            checks.append(name)

    gen_rows = [n for n in model if n.startswith("Generated")]
    check("generated near-constant across handled modes",
          all(spread(model[n]) < 1.12 for n in gen_rows),
          f"max spread {max(spread(model[n]) for n in gen_rows):.3f}")
    manual_spread = spread(model["Manual"])
    amd = device.startswith("Radeon")
    if not amd:
        check("manual varies strongly across modes", manual_spread > 1.4,
              f"spread {manual_spread:.2f}")
    else:
        check("AMD manual modes cluster (VLIW predication)",
              manual_spread < 1.35, f"spread {manual_spread:.2f}")
    mask_gain = (model["Generated"]["clamp"]
                 / model["Generated+Mask"]["clamp"])
    if not amd:
        check("constant-memory mask speedup > 1.25x", mask_gain > 1.25,
              f"{mask_gain:.2f}x")
    else:
        check("mask speedup muted on VLIW", 1.0 < mask_gain < 1.45,
              f"{mask_gain:.2f}x")
    markers = list(marker_agreement(model, paper, paper_data.MODE_ORDER))
    check("crash/n-a markers match the paper", not markers,
          "; ".join(markers))
    if backend == "cuda" and "RapidMind" in model:
        rm = model["RapidMind"]["clamp"] / model["Generated+Mask"]["clamp"]
        check("generated beats RapidMind >= 2x", rm >= 2.0, f"{rm:.2f}x")
    assert not checks, f"shape checks failed: {checks}"
    return checks


def run_gaussian_table(device: str, size: int):
    return gaussian_table(device, size)


def report_gaussian(model, device: str, size: int, title: str):
    paper = paper_data.ALL_GAUSSIAN_TABLES[device][size]
    aligned = dict(model)
    if "OpenCL(+Tex)" in paper and "OpenCL(+Img)" in aligned:
        aligned["OpenCL(+Tex)"] = aligned["OpenCL(+Img)"]
    print()
    print(format_comparison_table(aligned, paper,
                                  paper_data.GAUSSIAN_MODE_ORDER,
                                  title=title))
    errs = relative_errors(aligned, paper,
                           paper_data.GAUSSIAN_MODE_ORDER)
    print(f"mean relative error vs paper: {np.mean(errs):.1%} "
          f"(n={len(errs)} cells)")

    failures = []

    def check(name, cond, detail=""):
        print(shape_check(name, cond, detail))
        if not cond:
            failures.append(name)

    check("OpenCV PPT=8 beats PPT=1",
          all(model["OpenCV: PPT=8"][m] < model["OpenCV: PPT=1"][m]
              for m in HANDLED))
    check("OpenCV varies per mode, generated constant",
          spread(model["OpenCV: PPT=8"]) > 1.2
          and spread(model["CUDA(Gen)"]) < 1.08)
    check("generated ~ OpenCV PPT=1",
          all(model["CUDA(Gen)"][m] < model["OpenCV: PPT=1"][m] * 1.2
              for m in HANDLED))
    check("scratchpad staging slows small windows",
          all(model["CUDA(+Smem)"][m] > model["CUDA(Gen)"][m]
              for m in HANDLED))
    check("OpenCL slower than CUDA",
          all(model["OpenCL(Gen)"][m] > model["CUDA(Gen)"][m]
              for m in HANDLED))
    assert not failures, f"shape checks failed: {failures}"
