"""Table VIII — Gaussian 3x3 and 5x5 vs OpenCV on the Tesla C2050.

Regenerates both filter-size blocks of the table, checks the OpenCV
PPT/mode/smem shape claims; pytest-benchmark times the pipeline run.
"""

import pytest

from .common import report_gaussian, run_gaussian_table

DEVICE = "Tesla C2050"


@pytest.mark.parametrize("size", [3, 5])
def test_table8(benchmark, size):
    table = benchmark(run_gaussian_table, DEVICE, size)
    report_gaussian(table, DEVICE, size,
                    f"Table VIII — Gaussian {size}x{size}, {DEVICE}")
