"""Table III — bilateral 13x13, Tesla C2050, OpenCL.

Regenerates the published table through the full pipeline and checks its
shape claims; pytest-benchmark times the pipeline run.
"""

from .common import report_bilateral, run_bilateral_table

DEVICE = "Tesla C2050"
BACKEND = "opencl"
TITLE = "Table III — bilateral 13x13, Tesla C2050, OpenCL"


def test_table3(benchmark):
    table = benchmark(run_bilateral_table, DEVICE, BACKEND)
    report_bilateral(table, DEVICE, BACKEND, TITLE)
