"""Real wall-time benchmarks of the compiler pipeline and the functional
simulator — the throughput of *this* implementation (not modelled GPU
time): parse, type check, optimization passes, code generation, and
simulated execution of a full image.
"""

import numpy as np
import pytest

from repro import Boundary, CodegenOptions, compile_kernel
from repro.backends import generate
from repro.frontend import parse_kernel
from repro.ir import typecheck_kernel, unroll_loops, propagate_constants
from repro.ir.optimize import optimize_for_device
from repro.filters.bilateral import make_bilateral
from repro.filters.gaussian import make_gaussian


@pytest.fixture(scope="module")
def bilateral_ir():
    kernel, _, _ = make_bilateral(64, 64, sigma_d=3, sigma_r=5.0)
    return typecheck_kernel(parse_kernel(kernel))


def test_frontend_parse(benchmark):
    kernel, _, _ = make_bilateral(64, 64, sigma_d=3, sigma_r=5.0)
    benchmark(lambda: typecheck_kernel(parse_kernel(kernel)))


def test_constant_propagation(benchmark, bilateral_ir):
    benchmark(propagate_constants, bilateral_ir)


def test_unrolling(benchmark):
    kernel, _, _ = make_gaussian(64, 64, size=5)
    ir = propagate_constants(typecheck_kernel(parse_kernel(kernel)))
    benchmark(unroll_loops, ir)


def test_device_optimization_passes(benchmark, bilateral_ir):
    benchmark(optimize_for_device, bilateral_ir)


@pytest.mark.parametrize("backend", ["cuda", "opencl"])
def test_codegen(benchmark, bilateral_ir, backend):
    options = CodegenOptions(backend=backend, use_texture=True)
    src = benchmark(generate, bilateral_ir, options, (4096, 4096))
    assert src.num_variants == 9


def test_full_compile(benchmark):
    def compile_fresh():
        kernel, _, _ = make_bilateral(64, 64, sigma_d=3, sigma_r=5.0)
        return compile_kernel(kernel, backend="cuda",
                              device="Tesla C2050")
    compiled = benchmark(compile_fresh)
    assert compiled.source.device_lines > 100


def test_simulator_throughput_gaussian(benchmark):
    kernel, img_in, img_out = make_gaussian(512, 512, size=5)
    rng = np.random.default_rng(0)
    img_in.set_data(rng.random((512, 512)).astype(np.float32))
    compiled = compile_kernel(kernel, backend="cuda")

    benchmark(compiled.execute)
    assert img_out.get_data().std() > 0


def test_simulator_throughput_bilateral(benchmark):
    kernel, img_in, img_out = make_bilateral(128, 128, sigma_d=2,
                                             sigma_r=0.1)
    rng = np.random.default_rng(1)
    img_in.set_data(rng.random((128, 128)).astype(np.float32))
    compiled = compile_kernel(kernel, backend="cuda")

    benchmark(compiled.execute)
    assert img_out.get_data().std() > 0
