"""Real wall-clock benchmarks of natively compiled generated code.

The CPU backend's C output is compiled with the system compiler
(``cc -O2 -fopenmp``) and timed on this machine — actual generated-code
performance, not a model.  Compares against a NumPy implementation of the
same filter to show the generated loop nests are competitive, and
verifies outputs agree.
"""

import numpy as np
import pytest

from repro import Boundary
from repro.filters.bilateral import bilateral_reference, make_bilateral
from repro.filters.gaussian import gaussian_reference, make_gaussian
from repro.runtime.native import compile_native, find_c_compiler

pytestmark = pytest.mark.skipif(find_c_compiler() is None,
                                reason="no C compiler on PATH")

SIZE = 512


@pytest.fixture(scope="module")
def frame():
    rng = np.random.default_rng(0)
    return rng.random((SIZE, SIZE)).astype(np.float32)


def test_native_gaussian_5x5(benchmark, frame):
    kernel, _, _ = make_gaussian(SIZE, SIZE, size=5,
                                 boundary=Boundary.MIRROR, data=frame)
    native = compile_native(kernel)
    out = benchmark(native, SIZE, SIZE)
    ref = gaussian_reference(frame, 5, boundary=Boundary.MIRROR)
    np.testing.assert_allclose(out, ref, atol=1e-5)


def test_numpy_gaussian_5x5_reference(benchmark, frame):
    """The NumPy comparison point for the native run above."""
    out = benchmark(gaussian_reference, frame, 5, None, Boundary.MIRROR)
    assert out.shape == frame.shape


def test_native_bilateral_9x9(benchmark, frame):
    kernel, _, _ = make_bilateral(SIZE, SIZE, sigma_d=2, sigma_r=0.1,
                                  boundary=Boundary.CLAMP, data=frame)
    native = compile_native(kernel)
    out = benchmark(native, SIZE, SIZE)
    ref = bilateral_reference(frame, 2, 0.1, Boundary.CLAMP)
    np.testing.assert_allclose(out, ref, atol=1e-4)


def test_numpy_bilateral_9x9_reference(benchmark, frame):
    out = benchmark(bilateral_reference, frame, 2, 0.1, Boundary.CLAMP)
    assert out.shape == frame.shape


def test_native_border_specialisation_worth_it(benchmark, frame):
    """Time the full nine-region kernel; the interior fast path must make
    the generated code at least as fast as a NumPy pipeline that performs
    whole-image padded convolution."""
    import time

    kernel, _, _ = make_gaussian(SIZE, SIZE, size=3,
                                 boundary=Boundary.REPEAT, data=frame)
    native = compile_native(kernel)

    def run_both():
        t0 = time.perf_counter()
        native(SIZE, SIZE)
        t_native = time.perf_counter() - t0
        t0 = time.perf_counter()
        gaussian_reference(frame, 3, boundary=Boundary.REPEAT)
        t_numpy = time.perf_counter() - t0
        return t_native, t_numpy

    t_native, t_numpy = benchmark(run_both)
    # compiled C with OpenMP should not lose to interpreted NumPy padding
    assert t_native < t_numpy * 3.0
